package forecast

import (
	"math"
	"reflect"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (all defaults): %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := []Config{
		{Predictor: "arima"},
		{Window: -1},
		{Window: maxWindow + 1},
		{HoltAlpha: 1.5},
		{HoltAlpha: -0.1},
		{HoltBeta: 2},
		{AROrder: -2},
		{AROrder: 8, Window: 16}, // needs window >= 17
		{CorrectionAlpha: 1.5},
		{CorrectionAlpha: -0.5},
		{CorrectionAlpha: math.NaN()},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated; want error", c)
		}
	}
}

func TestConstantPredictsLast(t *testing.T) {
	p := Constant{}
	if got := p.Predict(nil); got != 0 {
		t.Fatalf("empty series: %v, want 0", got)
	}
	if got := p.Predict([]float64{3, 9, 4}); got != 4 {
		t.Fatalf("got %v, want 4", got)
	}
}

func TestHoltTracksRamp(t *testing.T) {
	h := Holt{Alpha: 0.5, Beta: 0.3}
	// Perfect linear ramp: the one-step-ahead forecast must beat the
	// last observed value (which is what a reactive controller uses).
	series := make([]float64, 12)
	for i := range series {
		series[i] = 10 + 5*float64(i)
	}
	next := 10 + 5*float64(len(series))
	got := h.Predict(series)
	last := series[len(series)-1]
	if math.Abs(got-next) >= math.Abs(last-next) {
		t.Fatalf("holt %v is no closer to %v than last value %v", got, next, last)
	}
}

func TestHoltNeverNegative(t *testing.T) {
	h := Holt{Alpha: 0.9, Beta: 0.9}
	// A crashing series extrapolates below zero; the contract clamps.
	if got := h.Predict([]float64{100, 50, 10, 1}); got < 0 {
		t.Fatalf("negative prediction %v", got)
	}
}

func TestWindowARFitsLinearRamp(t *testing.T) {
	a := WindowAR{Order: 2}
	series := make([]float64, 16)
	for i := range series {
		series[i] = 4 + 3*float64(i)
	}
	next := 4 + 3*float64(len(series))
	got := a.Predict(series)
	if math.Abs(got-next) > 0.5 {
		t.Fatalf("AR predicted %v for a clean ramp, want ~%v", got, next)
	}
}

func TestWindowARFallsBackOnShortSeries(t *testing.T) {
	a := WindowAR{Order: 3}
	series := []float64{5, 6, 7} // < 2p+1 observations
	if got := a.Predict(series); got != 7 {
		t.Fatalf("short-series fallback: %v, want last value 7", got)
	}
}

func TestWindowARConstantSeries(t *testing.T) {
	a := WindowAR{Order: 3}
	series := make([]float64, 16)
	for i := range series {
		series[i] = 42
	}
	got := a.Predict(series)
	if math.Abs(got-42) > 1 {
		t.Fatalf("constant series predicted %v, want ~42", got)
	}
}

func TestSurgeCap(t *testing.T) {
	h := Holt{Alpha: 1, Beta: 1}
	// An explosive series must not extrapolate past surgeCap x max.
	series := []float64{1, 10, 100, 1000}
	if got := h.Predict(series); got > surgeCap*1000 {
		t.Fatalf("prediction %v exceeds surge cap %v", got, surgeCap*1000)
	}
}

func TestCorrectorConvergesOnBias(t *testing.T) {
	c := NewCorrector(0.5)
	// The model persistently predicts half the observed demand; the
	// factor should climb toward the 2x clamp.
	for i := 0; i < 32; i++ {
		c.Observe(50, 100)
	}
	if got := c.Factor(); got < 1.8 {
		t.Fatalf("factor %v after persistent 2x underprediction, want near %v", got, CorrectionMax)
	}
	if c.Samples() != 32 {
		t.Fatalf("samples %d, want 32", c.Samples())
	}
}

func TestCorrectorDisabledAndDegenerate(t *testing.T) {
	var zero Corrector
	zero.Observe(10, 20)
	if zero.Factor() != 1 {
		t.Fatalf("zero-value corrector factor %v, want 1", zero.Factor())
	}
	c := NewCorrector(0.5)
	c.Observe(0, 100)          // no ratio from a zero prediction
	c.Observe(10, math.Inf(1)) // non-finite observation ignored
	c.Observe(math.NaN(), 10)  // non-finite prediction ignored
	if c.Factor() != 1 || c.Samples() != 0 {
		t.Fatalf("degenerate feedback moved the factor: %v (%d samples)", c.Factor(), c.Samples())
	}
}

func TestForecasterFirstCyclePassesThrough(t *testing.T) {
	f, err := New(Config{Predictor: PredictorHolt})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Forecast("web", 100, 25); got != 25 {
		t.Fatalf("first observation forecast %v, want pass-through 25", got)
	}
}

func TestForecasterReplaySameCycle(t *testing.T) {
	f, err := New(Config{Predictor: PredictorHolt})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f.Forecast("web", float64(100*i), 10+float64(5*i))
	}
	p1 := f.Forecast("web", 500, 35)
	p2 := f.Forecast("web", 500, 35)
	p3 := f.Forecast("web", 500, 9999) // replay ignores the new value
	if p1 != p2 || p1 != p3 {
		t.Fatalf("replay diverged: %v, %v, %v", p1, p2, p3)
	}
	st := f.Export()
	if st.Apps[0].HasPred && len(st.Apps[0].History) > 5 {
		t.Fatalf("replay grew the history: %d entries", len(st.Apps[0].History))
	}
}

func TestForecasterTimeRegressionPassesThrough(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	f.Forecast("web", 200, 10)
	before := f.Export()
	if got := f.Forecast("web", 100, 77); got != 77 {
		t.Fatalf("regressed call forecast %v, want pass-through 77", got)
	}
	if !reflect.DeepEqual(before, f.Export()) {
		t.Fatal("time regression mutated forecaster state")
	}
}

func TestForecasterWindowBound(t *testing.T) {
	f, err := New(Config{Predictor: PredictorConstant, Window: 4, AROrder: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.Forecast("web", float64(i), float64(i))
	}
	st := f.Export() // pre-cycle stash: 19 observations, windowed to 4
	if got := st.Apps[0].History; !reflect.DeepEqual(got, []float64{15, 16, 17, 18}) {
		t.Fatalf("window ring = %v, want [15 16 17 18]", got)
	}
}

// TestExportRestoreRoundTrip: export → restore → identical next-cycle
// forecast, the checkpoint contract end to end.
func TestExportRestoreRoundTrip(t *testing.T) {
	for _, pred := range []string{PredictorConstant, PredictorHolt, PredictorAR} {
		cfg := Config{Predictor: pred, CorrectionAlpha: 0.25}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A ramp with a kink, two apps, so histories and correction
		// factors are all non-trivial.
		for i := 0; i < 24; i++ {
			now := float64(600 * i)
			f.Forecast("web", now, 10+2*float64(i))
			f.Forecast("store", now, 80-float64(i))
		}
		st := f.Export()
		g, err := Restore(st)
		if err != nil {
			t.Fatalf("%s: restore: %v", pred, err)
		}
		// The restored forecaster must replay the stashed cycle (the
		// restore re-plan path) and then forecast the next cycle
		// identically.
		for i := 23; i < 30; i++ {
			now := float64(600 * i)
			obsW, obsS := 10+2*float64(i), 80-float64(i)
			if a, b := f.Forecast("web", now, obsW), g.Forecast("web", now, obsW); a != b {
				t.Fatalf("%s: web forecast diverged at cycle %d: %v vs %v", pred, i, a, b)
			}
			if a, b := f.Forecast("store", now, obsS), g.Forecast("store", now, obsS); a != b {
				t.Fatalf("%s: store forecast diverged at cycle %d: %v vs %v", pred, i, a, b)
			}
		}
		if !reflect.DeepEqual(f.Export(), g.Export()) {
			t.Fatalf("%s: exported states diverged after identical cycles", pred)
		}
	}
}

func TestStateValidate(t *testing.T) {
	valid := &State{Config: DefaultConfig(), HasNow: true, LastNow: 600,
		Apps: []AppState{{ID: "a", History: []float64{1, 2}, Factor: 1}}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid state: %v", err)
	}
	bad := []*State{
		{Config: Config{Predictor: "bogus"}},
		{Config: DefaultConfig(), HasNow: true, LastNow: math.Inf(1)},
		{Config: DefaultConfig(), Apps: []AppState{{ID: ""}}},
		{Config: DefaultConfig(), Apps: []AppState{{ID: "b"}, {ID: "a"}}}, // unsorted
		{Config: DefaultConfig(), Apps: []AppState{{ID: "a", History: []float64{-1}}}},
		{Config: DefaultConfig(), Apps: []AppState{{ID: "a", History: []float64{math.NaN()}}}},
		{Config: DefaultConfig(), Apps: []AppState{{ID: "a", Factor: 9}}},
		{Config: DefaultConfig(), Apps: []AppState{{ID: "a", CorrectionSamples: -1}}},
		{Config: DefaultConfig(), Apps: []AppState{{ID: "a", HasPred: true, Pred: -2}}},
		{Config: Config{Window: 4, AROrder: 1}, Apps: []AppState{
			{ID: "a", History: []float64{1, 2, 3, 4, 5}}}}, // history > window
	}
	for i, st := range bad {
		if err := st.Validate(); err == nil {
			t.Errorf("bad state %d validated", i)
		}
	}
}

func TestForecasterSanitizesObservations(t *testing.T) {
	f, err := New(Config{Predictor: PredictorConstant})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{math.NaN(), math.Inf(1), -5} {
		got := f.Forecast("web", float64(i), v)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("observation %v produced forecast %v", v, got)
		}
	}
}

package trace

import (
	"math"
	"strings"
	"testing"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/rng"
	"slaplace/internal/sim"
	"slaplace/internal/vm"
	"slaplace/internal/workload/batch"
)

func baseClass() batch.Class {
	return batch.Class{
		Name:        "batch",
		Work:        res.Work(4500 * 1000),
		MaxSpeed:    4500,
		Mem:         5000,
		GoalStretch: 3,
	}
}

func sampleRecords() []JobRecord {
	return []JobRecord{
		{ID: "a", Submit: 100, Work: 4500 * 1000, MaxSpeed: 4500, Mem: 5000, Goal: 4000, Class: "batch"},
		{ID: "b", Submit: 50, Work: 9000 * 500, MaxSpeed: 4500, Mem: 4000, Goal: 0, Class: "gold"},
		{ID: "c", Submit: 300, Work: 4500 * 2000, MaxSpeed: 2250, Mem: 6000, Goal: 9000, Class: "batch"},
	}
}

func TestJobRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteJobs(&sb, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("round trip lost records: %d", len(got))
	}
	// WriteJobs sorts by submit time.
	if got[0].ID != "b" || got[1].ID != "a" || got[2].ID != "c" {
		t.Errorf("order after round trip: %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
	if got[1].Work != 4500*1000 || got[1].Goal != 4000 || got[1].Class != "batch" {
		t.Errorf("record fields corrupted: %+v", got[1])
	}
	if got[2].MaxSpeed != 2250 || got[2].Mem != 6000 {
		t.Errorf("record fields corrupted: %+v", got[2])
	}
}

func TestReadJobsRejectsGarbage(t *testing.T) {
	cases := []string{
		"",      // no header
		"x,y\n", // wrong header
		"id,submit,work,maxspeed,mem,goal,class\na,-5,1,1,1,0,c\n",  // negative submit
		"id,submit,work,maxspeed,mem,goal,class\na,1,zzz,1,1,0,c\n", // bad float
		"id,submit,work,maxspeed,mem,goal,class\n,1,1,1,1,0,c\n",    // empty id
	}
	for i, in := range cases {
		if _, err := ReadJobs(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteJobsValidates(t *testing.T) {
	var sb strings.Builder
	bad := []JobRecord{{ID: "", Submit: 1, Work: 1, MaxSpeed: 1, Mem: 1}}
	if err := WriteJobs(&sb, bad); err == nil {
		t.Error("invalid record written")
	}
}

func TestSynthesizeMatchesGeneratorStatistics(t *testing.T) {
	src := rng.NewSource(42)
	recs, err := Synthesize(src.Stream("syn"), baseClass(),
		[]batch.Phase{{Start: 0, MeanInterarrival: 260}}, 400, "job")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 400 {
		t.Fatalf("synthesized %d records", len(recs))
	}
	var sum float64
	prev := 0.0
	for _, r := range recs {
		if r.Submit < prev {
			t.Fatal("records out of order")
		}
		sum += r.Submit - prev
		prev = r.Submit
	}
	mean := sum / float64(len(recs))
	if math.Abs(mean-260)/260 > 0.15 {
		t.Errorf("mean inter-arrival %v, want ≈260", mean)
	}
	// Goals derived from stretch.
	r0 := recs[0]
	wantGoal := r0.Submit + 3*1000
	if math.Abs(r0.Goal-wantGoal) > 1e-9 {
		t.Errorf("goal %v, want %v", r0.Goal, wantGoal)
	}
}

func TestSynthesizePhaseChange(t *testing.T) {
	src := rng.NewSource(7)
	recs, err := Synthesize(src.Stream("syn"), baseClass(),
		[]batch.Phase{
			{Start: 0, MeanInterarrival: 100},
			{Start: 20000, DisableSubmission: true},
		}, 1000, "job")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Submit > 20000 {
			t.Fatalf("submission after disabled phase: %v", r.Submit)
		}
	}
	if len(recs) < 150 || len(recs) >= 1000 {
		t.Errorf("got %d records, want ≈200 then cut off", len(recs))
	}
}

func TestSynthesizeValidation(t *testing.T) {
	src := rng.NewSource(1)
	if _, err := Synthesize(src.Stream("x"), batch.Class{}, nil, 10, ""); err == nil {
		t.Error("invalid class accepted")
	}
	if _, err := Synthesize(src.Stream("x"), baseClass(), nil, 10, ""); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := Synthesize(src.Stream("x"), baseClass(),
		[]batch.Phase{{Start: 0, MeanInterarrival: 1}}, 0, ""); err == nil {
		t.Error("zero count accepted")
	}
}

func TestReplayerSubmitsAtExactTimes(t *testing.T) {
	eng := sim.New()
	cl := cluster.Uniform(2, 18000, 16000)
	mgr := vm.NewManager(eng, cl, vm.Costs{})
	rt := batch.NewRuntime(eng, mgr)

	rep, err := NewReplayer(rt, eng, sampleRecords(), baseClass())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count() != 3 {
		t.Errorf("Count = %d", rep.Count())
	}
	rep.Start()
	eng.RunUntil(1000)
	jobs := rt.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs", len(jobs))
	}
	// Submission order by time: b (50), a (100), c (300).
	if jobs[0].ID() != "b" || jobs[0].Submitted() != 50 {
		t.Errorf("first job %v at %v", jobs[0].ID(), jobs[0].Submitted())
	}
	// Explicit goal respected; zero goal derived from base stretch.
	a, _ := rt.Job("a")
	if a.Goal() != 4000 {
		t.Errorf("explicit goal %v", a.Goal())
	}
	b, _ := rt.Job("b")
	wantGoal := 50 + 3*res.Work(9000*500).Seconds(4500)
	if math.Abs(b.Goal()-wantGoal) > 1e-9 {
		t.Errorf("derived goal %v, want %v", b.Goal(), wantGoal)
	}
	// Per-record class name propagates.
	if b.Class().Name != "gold" {
		t.Errorf("class %q", b.Class().Name)
	}
}

func TestReplayerRejectsDuplicates(t *testing.T) {
	eng := sim.New()
	cl := cluster.Uniform(1, 18000, 16000)
	mgr := vm.NewManager(eng, cl, vm.Costs{})
	rt := batch.NewRuntime(eng, mgr)
	recs := []JobRecord{
		{ID: "dup", Submit: 1, Work: 1, MaxSpeed: 1, Mem: 1},
		{ID: "dup", Submit: 2, Work: 1, MaxSpeed: 1, Mem: 1},
	}
	if _, err := NewReplayer(rt, eng, recs, baseClass()); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestRateRoundTrip(t *testing.T) {
	var sb strings.Builder
	pattern, err := ReadRates(strings.NewReader("t,rate\n0,65\n3600,80\n7200,40\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := pattern.Lambda(1800); math.Abs(got-72.5) > 1e-9 {
		t.Errorf("interpolated rate %v, want 72.5", got)
	}
	if err := WriteRates(&sb, pattern, 0, 7200, 3600); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRates(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Lambda(3600); math.Abs(got-80) > 1e-9 {
		t.Errorf("rate after round trip %v", got)
	}
}

func TestReadRatesRejectsGarbage(t *testing.T) {
	for i, in := range []string{"", "a,b\n", "t,rate\nxx,1\n", "t,rate\n1,yy\n"} {
		if _, err := ReadRates(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteRatesValidation(t *testing.T) {
	var sb strings.Builder
	if err := WriteRates(&sb, nil, 0, 100, 0); err == nil {
		t.Error("zero step accepted")
	}
}

// Package trace reads, writes and replays workload traces. The paper's
// evaluation drives the system with a synthetic trace (800 identical
// jobs, exponential inter-arrivals); production studies replay recorded
// traces instead. This package supports both: synthesize a trace from a
// generator configuration, persist it as CSV, and replay any trace —
// synthetic or recorded — into a simulation with exact timing.
//
// Job trace CSV format (header required):
//
//	id,submit,work,maxspeed,mem,goal,class
//	job-0001,123.4,9e7,4500,5000,40123.4,batch
//
// Rate trace CSV format (header required) for web arrival rates:
//
//	t,rate
//	0,65
//	3600,80
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"slaplace/internal/res"
	"slaplace/internal/rng"
	"slaplace/internal/sim"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// JobRecord is one job of a workload trace.
type JobRecord struct {
	ID       string
	Submit   float64 // submission time, seconds from run start
	Work     res.Work
	MaxSpeed res.CPU
	Mem      res.Memory
	Goal     float64 // absolute completion goal; 0 derives from class stretch
	Class    string
}

// Validate reports record errors.
func (r JobRecord) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("trace: record with empty job ID")
	}
	if r.Submit < 0 {
		return fmt.Errorf("trace: job %q negative submit time %v", r.ID, r.Submit)
	}
	if r.Work <= 0 {
		return fmt.Errorf("trace: job %q non-positive work %v", r.ID, r.Work)
	}
	if r.MaxSpeed <= 0 {
		return fmt.Errorf("trace: job %q non-positive max speed %v", r.ID, r.MaxSpeed)
	}
	if r.Mem <= 0 {
		return fmt.Errorf("trace: job %q non-positive memory %v", r.ID, r.Mem)
	}
	if r.Goal < 0 {
		return fmt.Errorf("trace: job %q negative goal %v", r.ID, r.Goal)
	}
	return nil
}

// jobHeader is the canonical CSV header.
var jobHeader = []string{"id", "submit", "work", "maxspeed", "mem", "goal", "class"}

// WriteJobs persists records as CSV, sorted by submission time.
func WriteJobs(w io.Writer, recs []JobRecord) error {
	sorted := append([]JobRecord(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Submit < sorted[j].Submit })
	cw := csv.NewWriter(w)
	if err := cw.Write(jobHeader); err != nil {
		return err
	}
	for _, r := range sorted {
		if err := r.Validate(); err != nil {
			return err
		}
		row := []string{
			r.ID,
			strconv.FormatFloat(r.Submit, 'g', -1, 64),
			strconv.FormatFloat(float64(r.Work), 'g', -1, 64),
			strconv.FormatFloat(float64(r.MaxSpeed), 'g', -1, 64),
			strconv.FormatInt(int64(r.Mem), 10),
			strconv.FormatFloat(r.Goal, 'g', -1, 64),
			r.Class,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobs parses a job trace CSV.
func ReadJobs(r io.Reader) ([]JobRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(jobHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, h := range jobHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []JobRecord
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec := JobRecord{ID: row[0], Class: row[6]}
		if rec.Submit, err = strconv.ParseFloat(row[1], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d submit: %w", line, err)
		}
		var f float64
		if f, err = strconv.ParseFloat(row[2], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d work: %w", line, err)
		}
		rec.Work = res.Work(f)
		if f, err = strconv.ParseFloat(row[3], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d maxspeed: %w", line, err)
		}
		rec.MaxSpeed = res.CPU(f)
		var m int64
		if m, err = strconv.ParseInt(row[4], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d mem: %w", line, err)
		}
		rec.Mem = res.Memory(m)
		if rec.Goal, err = strconv.ParseFloat(row[5], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d goal: %w", line, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Synthesize generates a trace equivalent to what a batch.Generator
// with the given configuration would submit — useful for persisting a
// reproducible workload or inspecting it offline. Goals are derived
// from the class stretch.
func Synthesize(stream *rng.Stream, class batch.Class, phases []batch.Phase, maxJobs int, idPrefix string) ([]JobRecord, error) {
	if err := class.Validate(); err != nil {
		return nil, err
	}
	if maxJobs <= 0 {
		return nil, fmt.Errorf("trace: non-positive job count %d", maxJobs)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("trace: no phases")
	}
	if idPrefix == "" {
		idPrefix = class.Name
	}
	phaseAt := func(t float64) batch.Phase {
		cur := phases[0]
		for _, p := range phases {
			if p.Start <= t {
				cur = p
			} else {
				break
			}
		}
		return cur
	}
	var out []JobRecord
	t := 0.0
	for len(out) < maxJobs {
		ph := phaseAt(t)
		if ph.DisableSubmission {
			// Jump to the next enabled phase.
			advanced := false
			for _, p := range phases {
				if p.Start > t && !p.DisableSubmission {
					t = p.Start
					advanced = true
					break
				}
			}
			if !advanced {
				break
			}
			continue
		}
		next := t + stream.Exp(ph.MeanInterarrival)
		crossed := false
		for _, p := range phases {
			if p.Start > t && next > p.Start {
				t = p.Start
				crossed = true
				break
			}
		}
		if crossed {
			continue // resample from the boundary (memorylessness)
		}
		t = next
		out = append(out, JobRecord{
			ID:       fmt.Sprintf("%s-%04d", idPrefix, len(out)+1),
			Submit:   t,
			Work:     class.Work,
			MaxSpeed: class.MaxSpeed,
			Mem:      class.Mem,
			Goal:     t + class.GoalStretch*class.IdealDuration(),
			Class:    class.Name,
		})
	}
	return out, nil
}

// Replayer submits trace records into a batch runtime at their exact
// times.
type Replayer struct {
	rt      *batch.Runtime
	eng     *sim.Engine
	recs    []JobRecord
	base    batch.Class // template for stretch/fn defaults
	started bool
}

// NewReplayer validates the trace and prepares a replayer. The base
// class supplies the goal stretch (for records with Goal = 0) and the
// utility function; per-record work/speed/memory override it.
func NewReplayer(rt *batch.Runtime, eng *sim.Engine, recs []JobRecord, base batch.Class) (*Replayer, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("trace: duplicate job ID %q", r.ID)
		}
		seen[r.ID] = true
	}
	return &Replayer{rt: rt, eng: eng, recs: recs, base: base}, nil
}

// Start schedules every record's submission. Records whose submit time
// is in the simulation's past are submitted immediately.
func (r *Replayer) Start() {
	if r.started {
		panic("trace: replayer started twice")
	}
	r.started = true
	now := float64(r.eng.Now())
	for _, rec := range r.recs {
		rec := rec
		at := rec.Submit
		if at < now {
			at = now
		}
		r.eng.At(sim.Time(at), "trace-submit/"+rec.ID, func(sim.Time) {
			class := r.base
			class.Work = rec.Work
			class.MaxSpeed = rec.MaxSpeed
			class.Mem = rec.Mem
			if rec.Class != "" {
				class.Name = rec.Class
			}
			if _, err := r.rt.Submit(batch.JobID(rec.ID), class, rec.Goal); err != nil {
				panic(fmt.Sprintf("trace: replay submit %q: %v", rec.ID, err))
			}
		})
	}
}

// Count returns the number of records the replayer will submit.
func (r *Replayer) Count() int { return len(r.recs) }

// ReadRates parses a (t, rate) CSV into a web load pattern.
func ReadRates(r io.Reader) (*trans.Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading rate header: %w", err)
	}
	if header[0] != "t" || header[1] != "rate" {
		return nil, fmt.Errorf("trace: rate header is %v, want [t rate]", header)
	}
	var times, rates []float64
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d time: %w", line, err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d rate: %w", line, err)
		}
		times = append(times, t)
		rates = append(rates, v)
	}
	return trans.NewTrace(times, rates)
}

// WriteRates persists a sampled load pattern as a (t, rate) CSV.
func WriteRates(w io.Writer, pattern trans.LoadPattern, t0, t1, step float64) error {
	if step <= 0 || t1 < t0 {
		return fmt.Errorf("trace: invalid sampling window [%v, %v] step %v", t0, t1, step)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "rate"}); err != nil {
		return err
	}
	for t := t0; t <= t1; t += step {
		row := []string{
			strconv.FormatFloat(t, 'g', -1, 64),
			strconv.FormatFloat(pattern.Lambda(t), 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"slaplace/api"
)

// liteSnap is a small but non-trivial snapshot: a couple of nodes, a
// job, and an app, with Now advancing per cycle so successive plans
// differ.
func liteSnap(cycle int) *api.Snapshot {
	now := float64(cycle) * 30
	return &api.Snapshot{
		SchemaVersion: api.SchemaVersion,
		Now:           now,
		Nodes: []api.Node{
			{ID: "n0", CPUMHz: 4000, MemMB: 8192},
			{ID: "n1", CPUMHz: 4000, MemMB: 8192},
		},
		Jobs: []api.Job{{
			ID: "j0", State: api.JobPending,
			RemainingMHzs: 100000 - now*500, MaxSpeedMHz: 2000, MemMB: 1024,
			GoalSec: 600, SubmittedSec: 0,
		}},
		Apps: []api.App{{
			ID: "a0", Lambda: 10 + now/10, RTGoalSec: 0.5,
			Model:         api.Model{Type: api.ModelMG1PS, DemandMHzs: 40, CoreSpeedMHz: 4000},
			InstanceMemMB: 512, MaxPerInstanceMHz: 2000,
		}},
	}
}

// postStatus POSTs a plan request and returns only the HTTP status and
// decoded error body (for tests that expect a refusal).
func postStatus(t *testing.T, url string, req *api.PlanRequest) (int, api.ErrorResponse) {
	t.Helper()
	if req.SchemaVersion == 0 {
		req.SchemaVersion = api.SchemaVersion
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/plan", api.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var e api.ErrorResponse
	_ = json.Unmarshal(data, &e)
	return resp.StatusCode, e
}

func getReadyz(t *testing.T, url string) (int, api.ReadyResponse) {
	t.Helper()
	resp, err := http.Get(url + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ry api.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ry); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ry
}

func getHealthz(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestReadyzLifecycle is the liveness/readiness split regression test:
// a durable daemon reports "restoring" until the state scan runs,
// "ready" after, "draining" once Drain starts — while /v1/healthz
// answers 200 through all three.
func TestReadyzLifecycle(t *testing.T) {
	s := New(Options{StateDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, ry := getReadyz(t, ts.URL); code != http.StatusServiceUnavailable || ry.Status != api.ReadyStatusRestoring {
		t.Fatalf("before scan: %d %q, want 503 restoring", code, ry.Status)
	}
	if code := getHealthz(t, ts.URL); code != http.StatusOK {
		t.Fatalf("healthz while restoring = %d, want 200 (liveness is not readiness)", code)
	}

	if _, err := s.ScanState(); err != nil {
		t.Fatal(err)
	}
	if code, ry := getReadyz(t, ts.URL); code != http.StatusOK || ry.Status != api.ReadyStatusReady {
		t.Fatalf("after scan: %d %q, want 200 ready", code, ry.Status)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain of an empty server: %v", err)
	}
	if code, ry := getReadyz(t, ts.URL); code != http.StatusServiceUnavailable || ry.Status != api.ReadyStatusDraining {
		t.Fatalf("draining: %d %q, want 503 draining", code, ry.Status)
	}
	if code := getHealthz(t, ts.URL); code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", code)
	}

	// Draining refuses new sessions and inbound migrations.
	if code, _ := postStatus(t, ts.URL, &api.PlanRequest{ClusterID: "new", Snapshot: liteSnap(0)}); code != http.StatusServiceUnavailable {
		t.Fatalf("new session while draining = %d, want 503", code)
	}

	// A stateless server is ready from the start.
	s2 := New(Options{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if code, ry := getReadyz(t, ts2.URL); code != http.StatusOK || ry.Status != api.ReadyStatusReady {
		t.Fatalf("stateless server: %d %q, want 200 ready", code, ry.Status)
	}
}

// TestClaimConcurrentAdoption is the adoption-race regression test:
// two replicas sharing a state dir race to restore the same cluster;
// the claim file must pick exactly one winner, and the loser's error
// must name the winner (the 421 hint).
func TestClaimConcurrentAdoption(t *testing.T) {
	for round := 0; round < 8; round++ {
		stateDir := t.TempDir()

		// Seed a checkpoint with a claimless daemon (single-node mode),
		// then retire it.
		seed := New(Options{StateDir: stateDir})
		tsSeed := httptest.NewServer(seed.Handler())
		for i := 0; i < 3; i++ {
			if code, e := postStatus(t, tsSeed.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(i)}); code != http.StatusOK {
				t.Fatalf("seed cycle %d: %d %s", i, code, e.Error)
			}
		}
		tsSeed.Close()

		a := New(Options{StateDir: stateDir, ReplicaID: "http://replica-a"})
		b := New(Options{StateDir: stateDir, ReplicaID: "http://replica-b"})

		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i, s := range []*Server{a, b} {
			wg.Add(1)
			go func(i int, s *Server) {
				defer wg.Done()
				_, _, errs[i] = s.session("c", 0, nil)
			}(i, s)
		}
		wg.Wait()

		winners := 0
		for i, err := range errs {
			if err == nil {
				winners++
				continue
			}
			var notOwner *notOwnerError
			if !errors.As(err, &notOwner) {
				t.Fatalf("round %d: replica %d failed with %v, want notOwnerError", round, i, err)
			}
			if notOwner.owner != "http://replica-a" && notOwner.owner != "http://replica-b" {
				t.Fatalf("round %d: loser's error names %q, not the winner", round, notOwner.owner)
			}
		}
		if winners != 1 {
			t.Fatalf("round %d: %d replicas adopted cluster \"c\", want exactly 1", round, winners)
		}
	}
}

// TestClaimStaleTakeoverAndDepose: a dead replica's claim goes stale
// and a peer may steal it; if the "dead" replica was merely idle, its
// next checkpoint refresh must notice the depose and retire the
// session instead of double-writing the cluster's state.
func TestClaimStaleTakeoverAndDepose(t *testing.T) {
	stateDir := t.TempDir()
	a := New(Options{StateDir: stateDir, ReplicaID: "http://a", StaleClaimAfter: time.Hour})
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	if code, e := postStatus(t, tsA.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(0)}); code != http.StatusOK {
		t.Fatalf("seed: %d %s", code, e.Error)
	}

	b := New(Options{StateDir: stateDir, ReplicaID: "http://b", StaleClaimAfter: time.Hour})
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	// While A's claim is fresh, B must bounce the cluster to A.
	if code, e := postStatus(t, tsB.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(1)}); code != http.StatusMisdirectedRequest || e.Owner != "http://a" {
		t.Fatalf("fresh foreign claim: %d owner=%q, want 421 owner=http://a", code, e.Owner)
	}

	// Age the claim past the staleness window: now B may take over.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(a.claimPath("c"), old, old); err != nil {
		t.Fatal(err)
	}
	if code, e := postStatus(t, tsB.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(1)}); code != http.StatusOK {
		t.Fatalf("stale takeover: %d %s", code, e.Error)
	}

	// A still holds a session object; its next cycle's checkpoint
	// refresh must detect the depose and retire it...
	if code, _ := postStatus(t, tsA.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(2)}); code != http.StatusOK {
		t.Fatalf("deposed replica's in-flight cycle should still answer: %d", code)
	}
	if a.lookup("c") != nil {
		t.Fatal("deposed session not retired")
	}
	// ...and the request after that must re-route to B.
	if code, e := postStatus(t, tsA.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(3)}); code != http.StatusMisdirectedRequest || e.Owner != "http://b" {
		t.Fatalf("post-depose request: %d owner=%q, want 421 owner=http://b", code, e.Owner)
	}
}

// fleetServer builds a serve.Server whose ReplicaID is its own base
// URL — the convention the drain hand-off and 421 hints rely on. The
// caller fills in Peers once every fleet member's URL exists, then
// calls start.
func fleetServer(t *testing.T, stateDir string) (*Server, string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	s := New(Options{StateDir: stateDir, ReplicaID: url})
	start := func() {
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = l
		ts.Start()
		t.Cleanup(ts.Close)
	}
	return s, url, start
}

// TestDrainHandsOffToRingPeer: SIGTERM's server half. Draining must
// push each session's checkpoint into the ring-chosen peer, which
// continues the plan sequence byte-identically from the next cycle.
func TestDrainHandsOffToRingPeer(t *testing.T) {
	stateDir := t.TempDir()

	sA, urlA, startA := fleetServer(t, stateDir)
	sB, urlB, startB := fleetServer(t, stateDir)
	sA.opts.Peers = []string{urlB}
	sB.opts.Peers = []string{urlA}
	startA()
	startB()

	// Reference: an uninterrupted single server.
	ref := httptest.NewServer(New(Options{}).Handler())
	defer ref.Close()

	const cycles = 3
	for i := 0; i < cycles; i++ {
		refResp, refPlan := postPlan(t, ref.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(i)})
		gotResp, gotPlan := postPlan(t, urlA, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(i)})
		if refResp.Cycle != gotResp.Cycle || string(refPlan) != string(gotPlan) {
			t.Fatalf("cycle %d differs from reference before drain", i+1)
		}
	}

	if err := sA.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if sA.lookup("c") != nil {
		t.Fatal("drained server still holds the session")
	}

	// The receiver continues exactly where the drained server stopped.
	for i := cycles; i < cycles+2; i++ {
		refResp, refPlan := postPlan(t, ref.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(i)})
		gotResp, gotPlan := postPlan(t, urlB, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(i)})
		if gotResp.Cycle != i+1 || refResp.Cycle != i+1 {
			t.Fatalf("cycle after hand-off = %d, want %d", gotResp.Cycle, i+1)
		}
		if string(refPlan) != string(gotPlan) {
			t.Fatalf("cycle %d differs from uninterrupted reference after hand-off", i+1)
		}
	}

	// The drained server redirects stragglers to the new owner.
	if code, e := postStatus(t, urlA, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(cycles + 2)}); code != http.StatusServiceUnavailable &&
		!(code == http.StatusMisdirectedRequest && e.Owner == urlB) {
		t.Fatalf("straggler at drained server: %d owner=%q", code, e.Owner)
	}
}

// TestDrainWithoutPeersKeepsStateAdoptable: when every hand-off fails
// (no peers), drain must leave the checkpoint on disk with the claim
// released so any later replica adopts without a staleness wait.
func TestDrainWithoutPeersKeepsStateAdoptable(t *testing.T) {
	stateDir := t.TempDir()
	a := New(Options{StateDir: stateDir, ReplicaID: "http://a", StaleClaimAfter: time.Hour})
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	if code, e := postStatus(t, tsA.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(0)}); code != http.StatusOK {
		t.Fatalf("seed: %d %s", code, e.Error)
	}

	if err := a.Drain(context.Background()); err == nil {
		t.Fatal("drain with no peers should report the failed hand-off")
	}

	// Despite the fresh-claim window (an hour), a new replica adopts
	// immediately: the claim was released.
	b := New(Options{StateDir: stateDir, ReplicaID: "http://b", StaleClaimAfter: time.Hour})
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	resp, _ := postPlan(t, tsB.URL, &api.PlanRequest{ClusterID: "c", Snapshot: liteSnap(1)})
	if resp.Cycle != 2 {
		t.Fatalf("adopted session resumed at cycle %d, want 2", resp.Cycle)
	}
}

// TestScanStateRestoresEagerly: the startup scan restores every
// checkpoint up front (claims permitting) instead of waiting for each
// cluster's first request.
func TestScanStateRestoresEagerly(t *testing.T) {
	stateDir := t.TempDir()
	seed := New(Options{StateDir: stateDir})
	tsSeed := httptest.NewServer(seed.Handler())
	for _, id := range []string{"c1", "c2", "weird/../id"} {
		if code, e := postStatus(t, tsSeed.URL, &api.PlanRequest{ClusterID: id, Snapshot: liteSnap(0)}); code != http.StatusOK {
			t.Fatalf("seed %q: %d %s", id, code, e.Error)
		}
	}
	tsSeed.Close()

	s := New(Options{StateDir: stateDir, ReplicaID: "http://a"})
	n, err := s.ScanState()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("scan restored %d sessions, want 3", n)
	}
	for _, id := range []string{"c1", "c2", "weird/../id"} {
		if s.lookup(id) == nil {
			t.Fatalf("cluster %q not restored by the scan", id)
		}
	}

	// A second replica scanning the same dir adopts nothing — every
	// cluster is freshly claimed.
	s2 := New(Options{StateDir: stateDir, ReplicaID: "http://b"})
	if n, err := s2.ScanState(); err != nil || n != 0 {
		t.Fatalf("second scanner restored %d (err %v), want 0", n, err)
	}
}

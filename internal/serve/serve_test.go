package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"slaplace/api"
	"slaplace/internal/baseline"
	"slaplace/internal/control"
	"slaplace/internal/core"
	"slaplace/internal/experiments"
	"slaplace/internal/shard"
)

// captureController wraps a controller and converts every snapshot it
// plans to the wire form — without changing the plans, so the
// simulation (and therefore the captured state sequence) is exactly
// the golden run's.
type captureController struct {
	inner core.Controller
	snaps []*api.Snapshot
	errs  []error
}

func (c *captureController) Name() string { return c.inner.Name() }

func (c *captureController) Plan(st *core.State) *core.Plan {
	snap, err := api.FromCoreState(st)
	if err != nil {
		c.errs = append(c.errs, err)
	} else {
		c.snaps = append(c.snaps, snap)
	}
	return c.inner.Plan(st)
}

// goldenControllers builds the five controllers the golden fixture
// pins on the shortened baseline workload, keyed by their fixture
// names. Fresh instances per call: replays must start cold.
func goldenControllers() map[string]func() core.Controller {
	return map[string]func() core.Controller{
		"baseline/fcfs":      func() core.Controller { return baseline.FCFS{} },
		"baseline/edf":       func() core.Controller { return baseline.EDF{} },
		"baseline/fairshare": func() core.Controller { return baseline.FairShare{} },
		"baseline/static60":  func() core.Controller { return baseline.Static{BatchFraction: 0.6} },
		"baseline/utility":   func() core.Controller { return core.New(core.DefaultConfig()) },
	}
}

// captureSnapshots runs the golden baseline scenario for a controller
// and returns every control cycle's wire snapshot.
func captureSnapshots(t *testing.T, newCtrl func() core.Controller) []*api.Snapshot {
	t.Helper()
	cap := &captureController{inner: newCtrl()}
	sc := experiments.BaselineScenario(42, cap)
	if _, err := experiments.Run(sc); err != nil {
		t.Fatal(err)
	}
	if len(cap.errs) > 0 {
		t.Fatalf("snapshot capture: %v", cap.errs[0])
	}
	if len(cap.snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	return cap.snaps
}

// postPlan POSTs one plan request and returns the decoded response
// plus the raw bytes of its "plan" field.
func postPlan(t *testing.T, url string, req *api.PlanRequest) (*api.PlanResponse, json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if err := api.EncodePlanRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/plan", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/plan: %d: %s", resp.StatusCode, body)
	}
	var raw struct {
		Plan json.RawMessage `json:"plan"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	decoded, err := api.DecodePlanResponse(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return decoded, raw.Plan
}

// TestServeByteIdenticalToInProcess is the serving mode's contract:
// for every golden controller, replaying the golden run's snapshot
// sequence through POST /v1/plan returns, cycle for cycle, the exact
// bytes an in-process Session.Propose produces — and the plan
// sequence digested at the core level still matches the committed
// golden fixture, proving the wire round trip changes nothing.
func TestServeByteIdenticalToInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replays")
	}
	goldenPath := filepath.Join("..", "experiments", "testdata", "golden_plans.json")
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture: %v", err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}

	for name, newCtrl := range goldenControllers() {
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			snaps := captureSnapshots(t, newCtrl)

			// HTTP side: one server, one cluster session.
			srv := New(Options{NewController: newCtrl})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			// In-process side: a fresh session over a fresh controller.
			sess, err := control.NewSession(newCtrl())
			if err != nil {
				t.Fatal(err)
			}
			// Core side: digest the replayed plan sequence like the
			// golden test does.
			digester := sha256.New()
			ctrl := newCtrl()

			for i, snap := range snaps {
				wirePlan, _, err := sess.Propose(snap)
				if err != nil {
					t.Fatalf("cycle %d: Propose: %v", i, err)
				}
				inProcess, err := json.Marshal(wirePlan)
				if err != nil {
					t.Fatal(err)
				}
				_, overWire := postPlan(t, ts.URL, &api.PlanRequest{
					ClusterID: "golden", Snapshot: snap,
				})
				if !bytes.Equal(inProcess, overWire) {
					t.Fatalf("cycle %d: HTTP plan differs from in-process plan\nhttp: %.200s\nproc: %.200s",
						i, overWire, inProcess)
				}

				st, err := snap.CoreState()
				if err != nil {
					t.Fatal(err)
				}
				io.WriteString(digester, ctrl.Plan(st).Digest())
			}

			if want, ok := golden[name]; ok {
				if got := hex.EncodeToString(digester.Sum(nil)); got != want {
					t.Errorf("replayed plan-sequence digest %s, want golden %s "+
						"(the wire round trip changed planner behavior)", got, want)
				}
			} else {
				t.Errorf("case %s missing from golden fixture", name)
			}
		})
	}
}

// TestServeDeltaRequests: the delta protocol over HTTP — full snapshot
// first, then a patch; a stale base cycle is a 409.
func TestServeDeltaRequests(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	if len(snaps) < 2 {
		t.Fatalf("need 2 snapshots, got %d", len(snaps))
	}
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Reference: both snapshots in full against one session.
	refResp, _ := postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "full", Snapshot: snaps[0]})
	if refResp.Cycle != 1 {
		t.Fatalf("cycle %d after first plan", refResp.Cycle)
	}
	_, wantPlan := postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "full", Snapshot: snaps[1]})

	// Delta path: full snapshot, then patch to the second snapshot.
	resp1, _ := postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "delta", Snapshot: snaps[0]})
	delta := &api.SnapshotDelta{
		BaseCycle:  resp1.Cycle,
		Now:        snaps[1].Now,
		Nodes:      snaps[1].Nodes,
		UpsertJobs: snaps[1].Jobs,
		UpsertApps: snaps[1].Apps,
	}
	// Jobs that finished between the cycles must be removed.
	next := map[string]bool{}
	for _, j := range snaps[1].Jobs {
		next[j.ID] = true
	}
	for _, j := range snaps[0].Jobs {
		if !next[j.ID] {
			delta.RemoveJobs = append(delta.RemoveJobs, j.ID)
		}
	}
	resp2, gotPlan := postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "delta", Delta: delta})
	if !bytes.Equal(gotPlan, wantPlan) {
		t.Errorf("delta-fed plan differs from full-snapshot plan")
	}
	if resp2.Cycle != 2 {
		t.Errorf("cycle %d after delta", resp2.Cycle)
	}

	// Replaying the same delta (stale base) conflicts.
	var buf bytes.Buffer
	if err := api.EncodePlanRequest(&buf, &api.PlanRequest{ClusterID: "delta", Delta: delta}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("stale delta: status %d, want 409", resp.StatusCode)
	}

	// Delta replies omit the plan but carry the action delta.
	drifted := *snaps[1]
	apps := append([]api.App(nil), drifted.Apps...)
	apps[0].Lambda *= 1.1
	drifted.Apps = apps
	resp3, raw := postPlan(t, ts.URL, &api.PlanRequest{
		ClusterID: "delta", Snapshot: &drifted, Reply: api.ReplyDelta,
	})
	if len(raw) != 0 {
		t.Errorf("delta reply embedded a full plan (%d bytes)", len(raw))
	}
	if resp3.Plan != nil {
		t.Errorf("delta reply decoded a plan")
	}

	// A session's FIRST cycle answered with a delta reply must still
	// give the client something enactable: the bootstrap delta against
	// the empty placement.
	resp4, raw := postPlan(t, ts.URL, &api.PlanRequest{
		ClusterID: "fresh", Snapshot: snaps[0], Reply: api.ReplyDelta,
	})
	if len(raw) != 0 || resp4.Plan != nil {
		t.Errorf("first-cycle delta reply embedded a full plan")
	}
	if len(resp4.Delta) == 0 {
		t.Errorf("first-cycle delta reply carries no bootstrap actions")
	}
}

// TestServeEndpoints covers the small surface: health, stats, method
// and body validation.
func TestServeEndpoints(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	srv := New(Options{MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/v1/healthz")
	var health api.HealthResponse
	if code != 200 || json.Unmarshal(body, &health) != nil || health.Status != "ok" {
		t.Errorf("healthz: %d %s", code, body)
	}
	if health.SchemaVersion != api.SchemaVersion || health.Sessions != 0 {
		t.Errorf("healthz: %+v", health)
	}

	postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "a", Snapshot: snaps[0]})
	postPlan(t, ts.URL, &api.PlanRequest{Snapshot: snaps[0]}) // -> "default"

	code, body = get("/v1/stats")
	var stats api.StatsResponse
	if code != 200 || json.Unmarshal(body, &stats) != nil {
		t.Fatalf("stats: %d %s", code, body)
	}
	if len(stats.Sessions) != 2 || stats.Sessions[0].ClusterID != "a" ||
		stats.Sessions[1].ClusterID != "default" {
		t.Errorf("stats sessions: %+v", stats.Sessions)
	}
	if stats.Sessions[0].Cycles != 1 || stats.Sessions[0].Stats == nil {
		t.Errorf("session stats: %+v", stats.Sessions[0])
	}

	// Session cap: a third cluster is rejected.
	var buf bytes.Buffer
	if err := api.EncodePlanRequest(&buf, &api.PlanRequest{ClusterID: "c", Snapshot: snaps[0]}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("session cap: status %d, want 429", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Wrong methods.
	resp, err = http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/healthz: status %d, want 405", resp.StatusCode)
	}
}

// TestServeConcurrentClusters: distinct clusters plan concurrently and
// same-cluster requests serialize — exercised under -race in CI.
func TestServeConcurrentClusters(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clusters = 4
	const perCluster = 3
	var wg sync.WaitGroup
	for c := 0; c < clusters; c++ {
		for r := 0; r < perCluster; r++ {
			wg.Add(1)
			go func(c, r int) {
				defer wg.Done()
				snap := snaps[r%len(snaps)]
				var buf bytes.Buffer
				if err := api.EncodePlanRequest(&buf, &api.PlanRequest{
					ClusterID: fmt.Sprintf("cluster-%d", c), Snapshot: snap,
				}); err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				// Out-of-order timestamps for one cluster may conflict
				// (409); anything else must succeed.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
					body, _ := io.ReadAll(resp.Body)
					t.Errorf("cluster %d req %d: %d %s", c, r, resp.StatusCode, body)
				}
			}(c, r)
		}
	}
	wg.Wait()

	code := 0
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	code = resp.StatusCode
	resp.Body.Close()
	if code != 200 || health.Sessions != clusters {
		t.Errorf("after fan-out: %d sessions (status %d), want %d", health.Sessions, code, clusters)
	}
}

// TestServeShardsHint: a plan request may carry a shards hint; the
// session created from it plans the cluster sharded (visible in
// /v1/stats), byte-identically to an in-process sharded session, and
// the hint binds at session creation only.
func TestServeShardsHint(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, gotPlan := postPlan(t, ts.URL, &api.PlanRequest{
		ClusterID: "big", Snapshot: snaps[0], Shards: 2,
	})
	sess, err := control.NewSession(shard.New(shard.Config{Shards: 2}))
	if err != nil {
		t.Fatal(err)
	}
	wirePlan, _, err := sess.Propose(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wirePlan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPlan, want) {
		t.Errorf("sharded serve plan differs from in-process sharded session")
	}

	// A later request with a different hint keeps the session's shape.
	postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "big", Snapshot: snaps[0], Shards: 7})

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != 1 {
		t.Fatalf("sessions: %+v", stats.Sessions)
	}
	ss := stats.Sessions[0]
	if ss.Shards != 2 || !strings.HasPrefix(ss.Controller, "sharded2(") {
		t.Errorf("session shape: shards=%d controller=%q, want sharded2", ss.Shards, ss.Controller)
	}
	if ss.Stats == nil || ss.Stats.Replayed == 0 {
		t.Errorf("sharded session did not replay the identical snapshot: %+v", ss.Stats)
	}
	// Partition diagnostics: the session reports the effective shard
	// count and a meaningful demand-load spread.
	if ss.EffectiveShards != 2 {
		t.Errorf("effectiveShards = %d, want 2", ss.EffectiveShards)
	}
	if ss.ShardLoadSpread < 1 {
		t.Errorf("shardLoadSpread = %v, want >= 1", ss.ShardLoadSpread)
	}
	if ss.Reshards != 0 {
		t.Errorf("reshards = %d on a stable snapshot, want 0", ss.Reshards)
	}

	// An out-of-range hint is a 400 at the codec layer.
	var buf bytes.Buffer
	if err := api.EncodePlanRequest(&buf, &api.PlanRequest{
		ClusterID: "bad", Snapshot: snaps[0], Shards: api.MaxShards + 1,
	}); err != nil {
		t.Fatal(err)
	}
	bad, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized shards hint: status %d, want 400", bad.StatusCode)
	}
}

// TestServeConcurrentSoak hammers /v1/plan from many goroutines across
// overlapping cluster IDs — run under -race in CI. Each cluster has a
// distinct snapshot (distinct arrival rate), so any cross-session
// state bleed surfaces as wrong plan bytes; per-session serialization
// surfaces as a cycle count that disagrees with the requests served,
// and the identical-snapshot replay tier must make every response for
// one cluster byte-identical.
func TestServeConcurrentSoak(t *testing.T) {
	base := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clusters = 5
	const workers = 4
	const perWorker = 3 // every worker hits every cluster this many times

	// One distinct snapshot and reference plan per cluster. Shard two
	// of the clusters to soak the concurrent sharded path too.
	snaps := make([]*api.Snapshot, clusters)
	want := make([][]byte, clusters)
	shardsOf := func(c int) int {
		if c%2 == 1 {
			return 3
		}
		return 0
	}
	for c := 0; c < clusters; c++ {
		snap := *base[0]
		apps := append([]api.App(nil), snap.Apps...)
		apps[0].Lambda += float64(c) // distinct plans per cluster
		snap.Apps = apps
		snaps[c] = &snap
		var ctrl core.Controller = core.New(core.DefaultConfig())
		if k := shardsOf(c); k > 1 {
			ctrl = shard.New(shard.Config{Shards: k})
		}
		sess, err := control.NewSession(ctrl)
		if err != nil {
			t.Fatal(err)
		}
		plan, _, err := sess.Propose(&snap)
		if err != nil {
			t.Fatal(err)
		}
		if want[c], err = json.Marshal(plan); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < perWorker; r++ {
				for c := 0; c < clusters; c++ {
					var buf bytes.Buffer
					err := api.EncodePlanRequest(&buf, &api.PlanRequest{
						ClusterID: fmt.Sprintf("cluster-%d", c),
						Snapshot:  snaps[c],
						Shards:    shardsOf(c),
					})
					if err != nil {
						t.Error(err)
						return
					}
					resp, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
					if err != nil {
						t.Error(err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						t.Errorf("worker %d cluster %d: %d %s", w, c, resp.StatusCode, body)
						return
					}
					var raw struct {
						Plan json.RawMessage `json:"plan"`
					}
					if err := json.Unmarshal(body, &raw); err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(raw.Plan, want[c]) {
						t.Errorf("worker %d: cluster %d plan differs from its reference (cross-session bleed?)", w, c)
						return
					}
				}
				// Poll stats mid-flight: must never race or torn-read.
				resp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	// Per-session serialization: every request planned exactly once.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != clusters {
		t.Fatalf("%d sessions, want %d", len(stats.Sessions), clusters)
	}
	for _, ss := range stats.Sessions {
		if ss.Cycles != workers*perWorker {
			t.Errorf("cluster %s planned %d cycles, want %d", ss.ClusterID, ss.Cycles, workers*perWorker)
		}
	}
}

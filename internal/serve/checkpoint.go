package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"

	"slaplace/api"
)

// exportLocked builds the cluster's checkpoint. Caller holds cs.mu so
// the session state and the sharded partition boundaries are one
// consistent cut.
func exportLocked(cs *clusterSession, clusterID string) (*api.Checkpoint, error) {
	ck, err := cs.sess.Export()
	if err != nil {
		return nil, err
	}
	ck.ClusterID = clusterID
	ck.Shards = cs.shards
	if cs.sharded != nil {
		ck.ShardBounds, ck.ShardReshards = cs.sharded.ExportBounds()
	}
	return ck, nil
}

// checkpointPath maps a cluster ID to its state file. IDs are
// arbitrary client strings; path-escaping keeps "a/b" and ".." as flat
// file names inside the state dir.
func (s *Server) checkpointPath(clusterID string) string {
	return filepath.Join(s.opts.StateDir, url.PathEscape(clusterID)+".ckpt")
}

// writeCheckpointFile persists a checkpoint atomically: encode (binary
// — the compact codec, same bit-exactness guarantees as JSON) to a
// temp file in the state dir, fsync, rename over the live name. A
// crash mid-write leaves the previous file intact.
func (s *Server) writeCheckpointFile(ck *api.Checkpoint) error {
	tmp, err := os.CreateTemp(s.opts.StateDir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := api.EncodeCheckpointBinary(tmp, ck); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.checkpointPath(ck.ClusterID))
}

// readCheckpoint loads the cluster's state file. No file is not an
// error: (nil, nil) means start fresh.
func (s *Server) readCheckpoint(clusterID string) (*api.Checkpoint, error) {
	f, err := os.Open(s.checkpointPath(clusterID))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return api.DecodeCheckpointBinary(f)
}

// checkpointLocked exports the session and rolls its state file
// forward, re-asserting the cluster's ownership claim first. Caller
// holds cs.mu. A depose — another replica took the claim over while
// ours was stale — retires the local session instead of writing: the
// new owner is checkpointing this cluster now, and two writers would
// fork the plan sequence.
func (s *Server) checkpointLocked(cs *clusterSession, clusterID string) error {
	if err := s.refreshClaim(clusterID); err != nil {
		var notOwner *notOwnerError
		if errors.As(err, &notOwner) {
			s.retire(clusterID, cs)
			return fmt.Errorf("deposed: %w", err)
		}
		return err
	}
	ck, err := exportLocked(cs, clusterID)
	if err != nil {
		return err
	}
	if err := s.writeCheckpointFile(ck); err != nil {
		return err
	}
	cs.ckCycle = ck.Cycle
	return nil
}

// handleCheckpointGet exports a session as an api.Checkpoint, JSON by
// default, binary when the Accept header asks for it.
func (s *Server) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	clusterID := r.PathValue("cluster")
	cs := s.lookup(clusterID)
	if cs == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no session for cluster %q", clusterID))
		return
	}
	cs.mu.Lock()
	ck, err := exportLocked(cs, clusterID)
	cs.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if acceptsBinary(r) {
		w.Header().Set("Content-Type", api.ContentTypeBinary)
		if err := api.EncodeCheckpointBinary(w, ck); err != nil {
			s.logf("serve: binary checkpoint response for %q failed: %v", clusterID, err)
		}
		return
	}
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	if err := api.EncodeCheckpoint(w, ck); err != nil {
		s.logf("serve: checkpoint response for %q failed: %v", clusterID, err)
	}
}

// handleCheckpointPut restores a checkpoint as a new session — the
// migration path between daemons. The target cluster must not already
// have a session (409 otherwise); the checkpoint's own shard count and
// controller binding decide the session's shape.
func (s *Server) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	clusterID := r.PathValue("cluster")
	if s.draining.Load() {
		// A daemon on its way out must not accept a migration it would
		// immediately have to hand off again.
		httpError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var ck *api.Checkpoint
	var err error
	if sendsBinary(r) {
		ck, err = api.DecodeCheckpointBinary(body)
	} else {
		ck, err = api.DecodeCheckpoint(body)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if ck.ClusterID != "" && ck.ClusterID != clusterID {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("checkpoint is for cluster %q, not %q", ck.ClusterID, clusterID))
		return
	}
	ck.ClusterID = clusterID

	// Build the whole session before touching the table: the restore
	// re-plan is the expensive part and must not run under s.mu.
	cs := &clusterSession{}
	if err := s.restoreInto(cs, ck); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cs.once.Do(func() {})
	cs.ready.Store(true)

	// A PUT is an explicit ownership transfer (the drain hand-off
	// path): take the claim unconditionally, before the session becomes
	// visible, so the sender's leftover claim never bounces our own
	// checkpoint refreshes.
	if err := s.forceClaim(clusterID); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}

	s.mu.Lock()
	if _, exists := s.sessions[clusterID]; exists {
		s.mu.Unlock()
		httpError(w, http.StatusConflict,
			fmt.Errorf("cluster %q already has a session", clusterID))
		return
	}
	if s.opts.MaxSessions > 0 && len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("serve: session limit %d reached", s.opts.MaxSessions))
		return
	}
	s.sessions[clusterID] = cs
	s.mu.Unlock()

	// Make the migrated-in session durable immediately: if this daemon
	// dies before its first planned cycle, restart still finds it.
	if s.opts.StateDir != "" {
		cs.mu.Lock()
		if err := s.checkpointLocked(cs, clusterID); err != nil {
			s.logf("serve: checkpoint write for %q failed: %v", clusterID, err)
		}
		cs.mu.Unlock()
	}

	w.WriteHeader(http.StatusNoContent)
}

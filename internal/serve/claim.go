package serve

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Per-cluster ownership claims. When several replicas share a state
// dir, a checkpoint on disk is an invitation to adopt — and without
// arbitration two replicas scanning after a crash would both restore
// the same cluster and fork its plan sequence. A claim file
// (<escaped-cluster>.claim, containing the owner's replica ID) makes
// adoption exactly-once:
//
//   - fresh adoption creates the claim with O_CREATE|O_EXCL — the
//     filesystem picks exactly one winner;
//   - a claim whose mtime is older than StaleClaimAfter is presumed
//     orphaned (its owner stopped checkpointing — every checkpoint
//     write refreshes the mtime) and may be taken over: the thief
//     renames the stale file away (POSIX rename: one racer gets it,
//     the rest get ENOENT) and then competes in the O_EXCL create;
//   - a fresh claim by someone else is an answer, not an obstacle:
//     the caller gets notOwnerError carrying the owner's ID, which
//     the HTTP layer turns into 421 + an owner hint the retrying
//     client follows.
//
// Claims are enabled only when both StateDir and ReplicaID are set; a
// single-daemon deployment (no ReplicaID) keeps the claimless PR-7
// behavior bit for bit.

// notOwnerError reports that another replica holds a fresh claim on a
// cluster. owner is its replica ID — by convention its base URL, so it
// doubles as a routing hint.
type notOwnerError struct{ owner string }

func (e *notOwnerError) Error() string {
	return fmt.Sprintf("cluster is owned by replica %q", e.owner)
}

// claimsEnabled reports whether ownership arbitration is on.
func (s *Server) claimsEnabled() bool {
	return s.opts.StateDir != "" && s.opts.ReplicaID != ""
}

// claimPath maps a cluster ID to its claim file.
func (s *Server) claimPath(clusterID string) string {
	return filepath.Join(s.opts.StateDir, url.PathEscape(clusterID)+".claim")
}

// readClaim returns a claim file's owner and freshness.
func readClaim(path string) (owner string, mtime time.Time, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", time.Time{}, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return "", time.Time{}, err
	}
	return strings.TrimSpace(string(data)), st.ModTime(), nil
}

// acquireClaim takes (or refreshes) the cluster's claim for this
// replica. It returns notOwnerError when another replica holds a fresh
// claim, nil when the claim is ours on return. No-op when claims are
// disabled.
func (s *Server) acquireClaim(clusterID string) error {
	if !s.claimsEnabled() {
		return nil
	}
	path := s.claimPath(clusterID)
	for attempt := 0; attempt < 5; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, werr := f.WriteString(s.opts.ReplicaID + "\n")
			if serr := f.Sync(); werr == nil {
				werr = serr
			}
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		}
		if !errors.Is(err, os.ErrExist) {
			return err
		}
		owner, mtime, err := readClaim(path)
		if errors.Is(err, os.ErrNotExist) {
			continue // deleted between create and read — race again
		}
		if err != nil {
			return err
		}
		if owner == s.opts.ReplicaID {
			now := time.Now()
			return os.Chtimes(path, now, now)
		}
		if time.Since(mtime) < s.opts.StaleClaimAfter {
			return &notOwnerError{owner: owner}
		}
		// Stale: the owner stopped refreshing (dead, or the cluster went
		// idle on it — either way it will notice the depose on its next
		// refresh). Exactly one thief wins the rename; losers see ENOENT
		// and loop back to compete in the O_EXCL create.
		graveyard := path + ".steal." + url.PathEscape(s.opts.ReplicaID)
		if err := os.Rename(path, graveyard); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return err
		}
		_ = os.Remove(graveyard)
	}
	return fmt.Errorf("claim for %q: contention did not settle", clusterID)
}

// refreshClaim re-asserts ownership (bumping the mtime that keeps the
// claim fresh). notOwnerError means this replica was deposed — another
// replica took the claim over while ours was stale — and the caller
// must retire the session rather than keep writing state the new owner
// also writes.
func (s *Server) refreshClaim(clusterID string) error {
	if !s.claimsEnabled() {
		return nil
	}
	path := s.claimPath(clusterID)
	owner, _, err := readClaim(path)
	if errors.Is(err, os.ErrNotExist) {
		// Released or mid-steal; re-compete.
		return s.acquireClaim(clusterID)
	}
	if err != nil {
		return err
	}
	if owner != s.opts.ReplicaID {
		return &notOwnerError{owner: owner}
	}
	now := time.Now()
	return os.Chtimes(path, now, now)
}

// forceClaim asserts ownership unconditionally (atomic write-and-
// rename), fresh-foreign claims included. Only the checkpoint PUT path
// uses it: a PUT is an explicit transfer — the sender is draining and
// chose this replica, which outranks whatever the claim file says.
func (s *Server) forceClaim(clusterID string) error {
	if !s.claimsEnabled() {
		return nil
	}
	tmp, err := os.CreateTemp(s.opts.StateDir, ".claim-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(s.opts.ReplicaID + "\n"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.claimPath(clusterID))
}

// releaseClaim deletes the cluster's claim if it is still ours —
// after a failed drain hand-off, so any replica can adopt immediately
// instead of waiting out StaleClaimAfter.
func (s *Server) releaseClaim(clusterID string) {
	if !s.claimsEnabled() {
		return
	}
	path := s.claimPath(clusterID)
	owner, _, err := readClaim(path)
	if err != nil || owner != s.opts.ReplicaID {
		return
	}
	_ = os.Remove(path)
}

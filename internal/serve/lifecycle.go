package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"slaplace/api"
	"slaplace/internal/replica"
)

// Liveness vs readiness, drain, and the eager state scan — the
// lifecycle half of the daemon that makes rolling restarts and
// failover safe:
//
//	/v1/healthz  liveness: "is the process up" — always 200 while the
//	             daemon can answer at all, draining included, so an
//	             orchestrator does not kill a daemon that is busy
//	             handing its sessions off.
//	/v1/readyz   readiness: "should traffic come here" — 503 while the
//	             startup state scan is still restoring sessions and
//	             while draining. The coordinator probes this one.

// handleReadyz reports readiness (see above).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	status := api.ReadyStatusReady
	switch {
	case s.draining.Load():
		status = api.ReadyStatusDraining
	case s.restoring.Load():
		status = api.ReadyStatusRestoring
	}
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	resp := &api.ReadyResponse{
		Status:        status,
		SchemaVersion: api.SchemaVersion,
		Sessions:      n,
		ReplicaID:     s.opts.ReplicaID,
	}
	if status != api.ReadyStatusReady {
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, resp)
}

// ScanState eagerly restores every checkpoint in the state dir —
// instead of waiting for each cluster's first request — and then
// clears the "restoring" readiness state. With claims enabled it
// adopts only the clusters it can claim (free, ours, or stale); a
// fresh foreign claim is another replica's cluster and is skipped.
//
// A Server built with a StateDir starts in the restoring state and
// stays there until its owner calls ScanState (cmd/slaplace-serve does
// so right after binding the listener, so probes see "restoring" while
// the scan runs).
func (s *Server) ScanState() (restored int, err error) {
	defer s.restoring.Store(false)
	if s.opts.StateDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.opts.StateDir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".ckpt") || strings.HasPrefix(name, ".") {
			continue
		}
		clusterID, err := url.PathUnescape(strings.TrimSuffix(name, ".ckpt"))
		if err != nil {
			s.logf("serve: state scan: undecodable checkpoint name %q: %v", name, err)
			continue
		}
		_, _, serr := s.session(clusterID, 0, nil)
		var notOwner *notOwnerError
		switch {
		case errors.As(serr, &notOwner):
			// Another replica's cluster; not ours to restore.
		case serr != nil:
			s.logf("serve: state scan: cluster %q not restored: %v", clusterID, serr)
		default:
			restored++
		}
	}
	return restored, nil
}

// retire drops a session from the table (if it is still the one the
// caller holds). The cluster's next request re-resolves: 404 here, and
// the retrying client moves on to the owner.
func (s *Server) retire(clusterID string, cs *clusterSession) {
	s.mu.Lock()
	if s.sessions[clusterID] == cs {
		delete(s.sessions, clusterID)
	}
	s.mu.Unlock()
}

// Drain is the graceful half of a rolling restart. It flips readiness
// to draining (new sessions are refused with 503 from that point; live
// ones keep serving until handed off), then for each session: flush a
// final checkpoint, PUT it into the highest-ranked peer that will take
// it — the same rendezvous ranking the coordinator routes by, so the
// receiver is exactly where re-homed traffic lands — and retire the
// local session. A hand-off nobody accepted leaves the checkpoint on
// disk with the claim released, so any replica can adopt it from the
// shared state dir without waiting out the staleness window.
//
// The returned error is the first hand-off failure (nil when every
// session drained clean). Drain never blocks past ctx.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)

	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	byID := make(map[string]*clusterSession, len(s.sessions))
	for id, cs := range s.sessions {
		if cs.ready.Load() {
			ids = append(ids, id)
			byID[id] = cs
		}
	}
	s.mu.Unlock()
	sort.Strings(ids)

	client := replica.NewClient(replica.StaticRouter(s.opts.Peers))
	client.MaxAttempts = 3
	client.BaseBackoff = 100 * time.Millisecond
	client.Logf = s.opts.Logf

	var firstErr error
	for _, id := range ids {
		cs := byID[id]
		cs.mu.Lock()
		ck, err := exportLocked(cs, id)
		if err == nil && s.opts.StateDir != "" {
			// Final flush: even if every peer refuses the hand-off, the
			// state dir holds the last cycle.
			if werr := s.writeCheckpointFile(ck); werr != nil {
				s.logf("serve: drain: final checkpoint for %q failed: %v", id, werr)
			}
		}
		cs.mu.Unlock()
		if err != nil {
			s.logf("serve: drain: export for %q failed: %v", id, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("drain: export %q: %w", id, err)
			}
			continue
		}

		handed := ""
		for _, peer := range replica.Rank(id, s.opts.Peers) {
			if peer == s.opts.ReplicaID {
				continue
			}
			err := client.PutCheckpoint(ctx, peer, ck)
			if err == nil || errors.Is(err, replica.ErrAlreadyExists) {
				handed = peer
				break
			}
			s.logf("serve: drain: hand-off of %q to %s failed: %v", id, peer, err)
			if ctx.Err() != nil {
				break
			}
		}
		s.retire(id, cs)
		if handed != "" {
			s.logf("serve: drain: %q handed off to %s at cycle %d", id, handed, ck.Cycle)
			continue
		}
		// No peer took it: release the claim so the checkpoint on disk
		// is immediately adoptable.
		s.releaseClaim(id)
		if firstErr == nil {
			firstErr = fmt.Errorf("drain: no peer accepted cluster %q", id)
		}
		if ctx.Err() != nil && firstErr == nil {
			firstErr = ctx.Err()
		}
	}
	return firstErr
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

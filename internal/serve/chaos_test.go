package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"slaplace/api"
	"slaplace/internal/chaos"
	"slaplace/internal/control"
	"slaplace/internal/core"
)

// chaosStep is one request of a cluster's perturbed feed: the wire
// snapshot to POST, whether the server must reject it as a time
// regression (409), and — when accepted — the exact plan bytes an
// in-process session produces for it.
type chaosStep struct {
	wire       *api.Snapshot
	wantReject bool
	wantPlan   []byte
}

// chaosFeedConfig arms every pure-lie family: crashes with delayed
// detection, one flapping node, and stale replays. No wave — the
// captured baseline cluster is small and a wave would empty it.
func chaosFeedConfig(seed uint64) chaos.Config {
	return chaos.Config{
		Seed:  seed,
		Crash: &chaos.Crash{Every: 4, Start: 2, DetectionLag: 2},
		Flap:  &chaos.Flap{Nodes: 1, Period: 2, Start: 3},
		Stale: &chaos.Stale{DuplicateEvery: 3, RegressEvery: 5},
	}
}

// buildChaosFeed perturbs the captured snapshot sequence through a
// fresh seeded engine (pure-lie mode: no world behind the wire) and
// computes, with an in-process reference session, the expected outcome
// of every request. Every few steps it splices in a verbatim replay of
// an older perturbed snapshot — the strict time regression the engine's
// own stale family cannot produce on the wire (its regressions replay
// the newest accepted clock).
func buildChaosFeed(t *testing.T, base []*api.Snapshot, seed uint64) ([]chaosStep, chaos.Stats) {
	t.Helper()
	eng, err := chaos.New(chaosFeedConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := control.NewSession(core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	var steps []chaosStep
	lastNow := math.Inf(-1)
	add := func(wire *api.Snapshot) {
		s := chaosStep{wire: wire, wantReject: wire.Now < lastNow}
		if !s.wantReject {
			plan, _, err := sess.Propose(wire)
			if err != nil {
				t.Fatalf("reference session rejected step %d: %v", len(steps), err)
			}
			if s.wantPlan, err = json.Marshal(plan); err != nil {
				t.Fatal(err)
			}
			lastNow = wire.Now
		} else if _, _, err := sess.Propose(wire); !errors.Is(err, control.ErrTimeRegression) {
			t.Fatalf("reference session accepted a regressed snapshot: %v", err)
		}
		steps = append(steps, s)
	}
	for i, snap := range base {
		st, err := snap.CoreState()
		if err != nil {
			t.Fatal(err)
		}
		out := eng.Step(st, chaos.World{})
		wire, err := api.FromCoreState(out)
		if err != nil {
			t.Fatal(err)
		}
		add(wire)
		// Every fourth step, replay the perturbed snapshot from three
		// steps back — strictly older on the wire clock, so a 409.
		if i >= 3 && i%4 == 3 {
			add(steps[len(steps)-4].wire)
		}
	}
	return steps, eng.Stats()
}

// TestServeChaosSoak extends the concurrent race-soak to inconsistent
// and regressing snapshot feeds: per-cluster seeded chaos engines
// strand jobs on hidden nodes, keep dead nodes lingering, flap nodes,
// and replay stale reports, while explicit clock regressions are
// spliced into every feed. The daemon must answer every request —
// byte-identical plans for accepted snapshots, 409 for regressions —
// with no cross-session bleed and exact per-session cycle accounting.
// Run under -race (the CI chaos-soak job does).
func TestServeChaosSoak(t *testing.T) {
	base := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	if len(base) > 12 {
		base = base[:12]
	}

	const clusters = 4
	feeds := make([][]chaosStep, clusters)
	rejections := 0
	for c := 0; c < clusters; c++ {
		steps, stats := buildChaosFeed(t, base, 1000+uint64(c))
		feeds[c] = steps
		if stats.Crashes == 0 || stats.FlapCycles == 0 || stats.Duplicates == 0 {
			t.Fatalf("cluster %d feed injected too little chaos: %+v", c, stats)
		}
		for _, s := range steps {
			if s.wantReject {
				rejections++
			}
		}
	}
	if rejections == 0 {
		t.Fatal("no feed contains a strict time regression")
	}

	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One feeder per cluster (in-order within a cluster, concurrent
	// across clusters) plus a stats poller hammering the shared maps.
	var wg sync.WaitGroup
	for c := 0; c < clusters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, step := range feeds[c] {
				var buf bytes.Buffer
				err := api.EncodePlanRequest(&buf, &api.PlanRequest{
					ClusterID: fmt.Sprintf("chaos-%d", c),
					Snapshot:  step.wire,
				})
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if step.wantReject {
					if resp.StatusCode != http.StatusConflict {
						t.Errorf("cluster %d step %d: regressed snapshot got %d, want 409: %s",
							c, i, resp.StatusCode, body)
					}
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("cluster %d step %d: %d: %s", c, i, resp.StatusCode, body)
					return
				}
				var raw struct {
					Plan json.RawMessage `json:"plan"`
				}
				if err := json.Unmarshal(body, &raw); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(raw.Plan, step.wantPlan) {
					t.Errorf("cluster %d step %d: plan differs from in-process reference (cross-session bleed?)", c, i)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3*len(feeds[0]); i++ {
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	// Rejected snapshots must not count as planned cycles, and every
	// accepted one must count exactly once.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != clusters {
		t.Fatalf("%d sessions, want %d", len(stats.Sessions), clusters)
	}
	for _, ss := range stats.Sessions {
		var c int
		if _, err := fmt.Sscanf(ss.ClusterID, "chaos-%d", &c); err != nil {
			t.Errorf("unexpected session %q", ss.ClusterID)
			continue
		}
		accepted := 0
		for _, s := range feeds[c] {
			if !s.wantReject {
				accepted++
			}
		}
		if ss.Cycles != accepted {
			t.Errorf("cluster %s planned %d cycles, want %d accepted", ss.ClusterID, ss.Cycles, accepted)
		}
	}
}

package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"slaplace/api"
	"slaplace/internal/core"
)

// postPlanNegotiated POSTs one plan request using the binary codec for
// the body and, when acceptBinary, for the response too. It returns
// the decoded response and the response Content-Type.
func postPlanNegotiated(t *testing.T, url string, req *api.PlanRequest, acceptBinary bool) (*api.PlanResponse, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := api.EncodePlanRequestBinary(&buf, req); err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, url+"/v1/plan", &buf)
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", api.ContentTypeBinary)
	if acceptBinary {
		httpReq.Header.Set("Accept", api.ContentTypeBinary)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/plan (binary): %d: %s", resp.StatusCode, body)
	}
	ct := resp.Header.Get("Content-Type")
	var decoded *api.PlanResponse
	if ct == api.ContentTypeBinary {
		decoded, err = api.DecodePlanResponseBinary(bytes.NewReader(body))
	} else {
		decoded, err = api.DecodePlanResponse(bytes.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	return decoded, ct
}

// getCheckpoint fetches a cluster's checkpoint; binary selects the
// wire codec via the Accept header.
func getCheckpoint(t *testing.T, url, cluster string, binary bool) (*api.Checkpoint, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/sessions/"+cluster+"/checkpoint", nil)
	if err != nil {
		t.Fatal(err)
	}
	if binary {
		req.Header.Set("Accept", api.ContentTypeBinary)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var ck *api.Checkpoint
	if binary {
		if got := resp.Header.Get("Content-Type"); got != api.ContentTypeBinary {
			t.Fatalf("checkpoint Content-Type %q, want binary", got)
		}
		ck, err = api.DecodeCheckpointBinary(resp.Body)
	} else {
		ck, err = api.DecodeCheckpoint(resp.Body)
	}
	if err != nil {
		t.Fatal(err)
	}
	return ck, resp.StatusCode
}

// putCheckpoint uploads a checkpoint (binary codec) and returns the
// response status.
func putCheckpoint(t *testing.T, url, cluster string, ck *api.Checkpoint) int {
	t.Helper()
	var buf bytes.Buffer
	if err := api.EncodeCheckpointBinary(&buf, ck); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url+"/v1/sessions/"+cluster+"/checkpoint", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestServeBinaryNegotiation is the binary codec's serving contract:
// for every golden controller, driving the same snapshot sequence
// through the binary codec (request and response) produces plans
// BYTE-IDENTICAL — as canonical JSON — to the JSON transport, and the
// response Content-Type follows the Accept header.
func TestServeBinaryNegotiation(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replays")
	}
	for name, newCtrl := range goldenControllers() {
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			snaps := captureSnapshots(t, newCtrl)
			srv := New(Options{NewController: newCtrl})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			for i, snap := range snaps {
				jsonResp, _ := postPlan(t, ts.URL, &api.PlanRequest{
					ClusterID: "json", Snapshot: snap,
				})
				binResp, ct := postPlanNegotiated(t, ts.URL, &api.PlanRequest{
					ClusterID: "bin", Snapshot: snap,
				}, true)
				if ct != api.ContentTypeBinary {
					t.Fatalf("cycle %d: response Content-Type %q, want binary", i, ct)
				}
				// The two sessions intentionally differ only in cluster ID.
				binResp.ClusterID, jsonResp.ClusterID = "", ""
				got, err := json.Marshal(binResp)
				if err != nil {
					t.Fatal(err)
				}
				want, err := json.Marshal(jsonResp)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("cycle %d: binary-transport response differs from JSON transport\nbin:  %.200s\njson: %.200s",
						i, got, want)
				}
			}

			// Mixed negotiation: binary request, JSON response.
			mixResp, ct := postPlanNegotiated(t, ts.URL, &api.PlanRequest{
				ClusterID: "mix", Snapshot: snaps[0],
			}, false)
			if ct != api.ContentTypeJSON {
				t.Errorf("without Accept: Content-Type %q, want JSON", ct)
			}
			if mixResp.Cycle != 1 {
				t.Errorf("mixed-transport cycle %d", mixResp.Cycle)
			}
		})
	}
}

// TestServeCheckpointRestartGolden is the durability contract: for
// every golden controller, a daemon driven through half the golden
// snapshot sequence, killed without warning (nothing but the state
// dir survives), restarted, and driven through the rest produces —
// cycle for cycle — plans byte-identical to an uninterrupted
// in-process session, and the plan-sequence digest still matches the
// committed golden fixture.
func TestServeCheckpointRestartGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden replays")
	}
	goldenPath := filepath.Join("..", "experiments", "testdata", "golden_plans.json")
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture: %v", err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}

	for name, newCtrl := range goldenControllers() {
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			snaps := captureSnapshots(t, newCtrl)
			stateDir := t.TempDir()

			// Uninterrupted reference: the same server WITHOUT a restart.
			ref := httptest.NewServer(New(Options{NewController: newCtrl}).Handler())
			defer ref.Close()

			digester := sha256.New()
			drive := func(url string, snap *api.Snapshot, cycle int, digest bool) []byte {
				t.Helper()
				resp, raw := postPlan(t, url, &api.PlanRequest{ClusterID: "g", Snapshot: snap})
				if resp.Cycle != cycle {
					t.Fatalf("cycle %d, want %d", resp.Cycle, cycle)
				}
				if digest {
					corePlan, err := resp.Plan.CorePlan()
					if err != nil {
						t.Fatal(err)
					}
					io.WriteString(digester, corePlan.Digest())
				}
				return raw
			}

			// First half against daemon A.
			half := len(snaps) / 2
			if half == 0 {
				t.Fatal("golden run too short to split")
			}
			srvA := httptest.NewServer(New(Options{
				NewController: newCtrl, StateDir: stateDir,
			}).Handler())
			for i := 0; i < half; i++ {
				want := drive(ref.URL, snaps[i], i+1, false)
				got := drive(srvA.URL, snaps[i], i+1, true)
				if !bytes.Equal(got, want) {
					t.Fatalf("cycle %d (pre-kill): plan differs from uninterrupted reference", i)
				}
			}
			// kill -9: the process state vanishes; only StateDir survives.
			srvA.Close()

			// Second half against a fresh daemon over the same state dir.
			srvB := httptest.NewServer(New(Options{
				NewController: newCtrl, StateDir: stateDir,
			}).Handler())
			defer srvB.Close()
			for i := half; i < len(snaps); i++ {
				want := drive(ref.URL, snaps[i], i+1, false)
				got := drive(srvB.URL, snaps[i], i+1, true)
				if !bytes.Equal(got, want) {
					t.Fatalf("cycle %d (post-restart): plan differs from uninterrupted reference", i)
				}
			}

			want, ok := golden[name]
			if !ok {
				t.Fatalf("case %s missing from golden fixture", name)
			}
			if got := hex.EncodeToString(digester.Sum(nil)); got != want {
				t.Errorf("restarted plan-sequence digest %s, want golden %s "+
					"(the checkpoint/restore cycle changed planner behavior)", got, want)
			}
		})
	}
}

// TestServeCheckpointEndpoints: export/import over HTTP — the
// migration path. A checkpoint GET from daemon A, PUT into daemon B,
// continues the plan sequence byte-identically; the guard rails (404
// unknown cluster, 409 existing session, 400 bad body or mismatched
// cluster) hold.
func TestServeCheckpointEndpoints(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	if len(snaps) < 4 {
		t.Fatalf("need 4 snapshots, got %d", len(snaps))
	}
	srvA := httptest.NewServer(New(Options{}).Handler())
	defer srvA.Close()
	ref := httptest.NewServer(New(Options{}).Handler())
	defer ref.Close()

	if _, code := getCheckpoint(t, srvA.URL, "nope", false); code != http.StatusNotFound {
		t.Errorf("checkpoint of unknown cluster: %d, want 404", code)
	}

	for i := 0; i < 2; i++ {
		postPlan(t, srvA.URL, &api.PlanRequest{ClusterID: "mig", Snapshot: snaps[i]})
		postPlan(t, ref.URL, &api.PlanRequest{ClusterID: "mig", Snapshot: snaps[i]})
	}
	ckJSON, _ := getCheckpoint(t, srvA.URL, "mig", false)
	ckBin, _ := getCheckpoint(t, srvA.URL, "mig", true)
	jb, _ := json.Marshal(ckJSON)
	bb, _ := json.Marshal(ckBin)
	if !bytes.Equal(jb, bb) {
		t.Fatalf("JSON and binary checkpoint exports differ:\njson: %.200s\nbin:  %.200s", jb, bb)
	}
	if ckBin.Cycle != 2 || ckBin.ClusterID != "mig" || ckBin.Snapshot == nil || ckBin.Plan == nil {
		t.Fatalf("checkpoint shape: %+v", ckBin)
	}

	// Restore into daemon B and continue: bytes must match the
	// uninterrupted reference session.
	srvB := httptest.NewServer(New(Options{}).Handler())
	defer srvB.Close()
	if code := putCheckpoint(t, srvB.URL, "mig", ckBin); code != http.StatusNoContent {
		t.Fatalf("restore: %d, want 204", code)
	}
	for i := 2; i < 4; i++ {
		_, want := postPlan(t, ref.URL, &api.PlanRequest{ClusterID: "mig", Snapshot: snaps[i]})
		resp, got := postPlan(t, srvB.URL, &api.PlanRequest{ClusterID: "mig", Snapshot: snaps[i]})
		if resp.Cycle != i+1 {
			t.Errorf("post-migration cycle %d, want %d", resp.Cycle, i+1)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cycle %d: migrated session's plan differs from reference", i)
		}
	}

	// Guard rails.
	if code := putCheckpoint(t, srvB.URL, "mig", ckBin); code != http.StatusConflict {
		t.Errorf("restore over live session: %d, want 409", code)
	}
	if code := putCheckpoint(t, srvB.URL, "other", ckBin); code != http.StatusBadRequest {
		t.Errorf("restore under mismatched cluster ID: %d, want 400", code)
	}
	req, err := http.NewRequest(http.MethodPut, srvB.URL+"/v1/sessions/x/checkpoint",
		strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed checkpoint body: %d, want 400", resp.StatusCode)
	}
	// DELETE on the resource is not part of the protocol.
	req, err = http.NewRequest(http.MethodDelete, srvB.URL+"/v1/sessions/mig/checkpoint", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE checkpoint: %d, want 405", resp.StatusCode)
	}
}

// TestServeShardedCheckpointRestart: a SHARDED session survives kill
// -9 with its partition boundaries and reshard accounting intact — the
// restarted daemon continues byte-identically and reports the same
// shard diagnostics.
func TestServeShardedCheckpointRestart(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	if len(snaps) < 4 {
		t.Fatalf("need 4 snapshots, got %d", len(snaps))
	}
	stateDir := t.TempDir()
	ref := httptest.NewServer(New(Options{}).Handler())
	defer ref.Close()

	srvA := httptest.NewServer(New(Options{StateDir: stateDir}).Handler())
	for i := 0; i < 2; i++ {
		postPlan(t, ref.URL, &api.PlanRequest{ClusterID: "s", Snapshot: snaps[i], Shards: 2})
		postPlan(t, srvA.URL, &api.PlanRequest{ClusterID: "s", Snapshot: snaps[i], Shards: 2})
	}
	srvA.Close() // kill -9

	srvB := httptest.NewServer(New(Options{StateDir: stateDir}).Handler())
	defer srvB.Close()
	for i := 2; i < 4; i++ {
		// No shards hint on the restarted daemon: the checkpoint's own
		// shard count must decide the session's shape.
		_, want := postPlan(t, ref.URL, &api.PlanRequest{ClusterID: "s", Snapshot: snaps[i], Shards: 2})
		_, got := postPlan(t, srvB.URL, &api.PlanRequest{ClusterID: "s", Snapshot: snaps[i]})
		if !bytes.Equal(got, want) {
			t.Errorf("cycle %d: restarted sharded session's plan differs from reference", i)
		}
	}

	resp, err := http.Get(srvB.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != 1 {
		t.Fatalf("sessions: %+v", stats.Sessions)
	}
	ss := stats.Sessions[0]
	if ss.Shards != 2 || !strings.HasPrefix(ss.Controller, "sharded2(") {
		t.Errorf("restored shape: shards=%d controller=%q, want sharded2", ss.Shards, ss.Controller)
	}
	if ss.Cycles != 4 {
		t.Errorf("restored cycle count %d, want 4", ss.Cycles)
	}
}

// TestServeStateDirRobustness: a corrupt or foreign state file must
// cost the checkpoint, never the daemon — the session comes up fresh
// and a note is logged. CheckpointEvery throttles the write cadence.
func TestServeStateDirRobustness(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	stateDir := t.TempDir()

	// Corrupt file: valid header, garbage tail.
	if err := os.WriteFile(filepath.Join(stateDir, "bad.ckpt"),
		[]byte("SLPB\x01\x05garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	var logMu sync.Mutex
	srv := New(Options{
		StateDir:        stateDir,
		CheckpointEvery: 2,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "bad", Snapshot: snaps[0]}); resp.Cycle != 1 {
		t.Fatalf("fresh session over corrupt checkpoint: cycle %d", resp.Cycle)
	}
	logMu.Lock()
	complained := len(logged) > 0 && strings.Contains(logged[0], "unreadable")
	logMu.Unlock()
	if !complained {
		t.Errorf("corrupt state file not logged: %q", logged)
	}

	// CheckpointEvery=2: after cycle 1 there is no state file yet;
	// after cycle 2 there is one at cycle 2.
	path := filepath.Join(stateDir, "bad.ckpt")
	ck, err := api.DecodeCheckpointBinary(mustOpen(t, path))
	if err == nil && ck.Cycle >= 1 {
		t.Errorf("checkpoint written after cycle 1 despite CheckpointEvery=2 (cycle %d)", ck.Cycle)
	}
	postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "bad", Snapshot: snaps[1%len(snaps)]})
	ck, err = api.DecodeCheckpointBinary(mustOpen(t, path))
	if err != nil {
		t.Fatalf("state file after cycle 2: %v", err)
	}
	if ck.Cycle != 2 {
		t.Errorf("state file at cycle %d, want 2", ck.Cycle)
	}

	// Cluster IDs with path separators stay inside the state dir.
	postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "a/../b", Snapshot: snaps[0]})
	postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "a/../b", Snapshot: snaps[1%len(snaps)]})
	entries, err := os.ReadDir(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ckpt") {
			t.Errorf("unexpected state-dir entry %q", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(stateDir, url.PathEscape("a/../b")+".ckpt")); err != nil {
		t.Errorf("escaped checkpoint file missing: %v", err)
	}
}

func mustOpen(t *testing.T, path string) io.Reader {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// TestServeCheckpointSoak: checkpoint export/import traffic racing
// with plan traffic — run under -race in CI. Half the clusters plan
// continuously on daemon A while the other half are exported from A
// and imported into daemon B mid-flight; every migrated session must
// continue byte-identically.
func TestServeCheckpointSoak(t *testing.T) {
	base := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	srvA := httptest.NewServer(New(Options{StateDir: t.TempDir()}).Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(New(Options{}).Handler())
	defer srvB.Close()

	const clusters = 6
	const cycles = 3
	snaps := make([]*api.Snapshot, clusters)
	for c := 0; c < clusters; c++ {
		snap := *base[0]
		apps := append([]api.App(nil), snap.Apps...)
		apps[0].Lambda += float64(c)
		snap.Apps = apps
		snaps[c] = &snap
	}

	var wg sync.WaitGroup
	for c := 0; c < clusters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("soak-%d", c)
			for r := 0; r < cycles; r++ {
				postPlan(t, srvA.URL, &api.PlanRequest{ClusterID: id, Snapshot: snaps[c]})
				if c%2 == 0 {
					// Checkpoint readers race the planners.
					if ck, code := getCheckpoint(t, srvA.URL, id, c%4 == 0); code != http.StatusOK || ck == nil {
						t.Errorf("cluster %s: checkpoint GET %d", id, code)
					}
				}
			}
			if c%2 == 1 {
				// Migrate to daemon B and verify bytes continue.
				ck, code := getCheckpoint(t, srvA.URL, id, true)
				if code != http.StatusOK {
					t.Errorf("cluster %s: export %d", id, code)
					return
				}
				if code := putCheckpoint(t, srvB.URL, id, ck); code != http.StatusNoContent {
					t.Errorf("cluster %s: import %d", id, code)
					return
				}
				_, want := postPlan(t, srvA.URL, &api.PlanRequest{ClusterID: id, Snapshot: snaps[c]})
				_, got := postPlan(t, srvB.URL, &api.PlanRequest{ClusterID: id, Snapshot: snaps[c]})
				if !bytes.Equal(got, want) {
					t.Errorf("cluster %s: migrated continuation differs", id)
				}
			}
		}(c)
	}
	wg.Wait()
}

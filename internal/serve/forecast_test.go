package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"slaplace/api"
	"slaplace/internal/control"
	"slaplace/internal/core"
	"slaplace/internal/forecast"
)

// TestServeForecastHint: a plan request may carry a forecast hint; the
// session created from it plans predictively (visible in /v1/stats),
// byte-identically to an in-process forecast-enabled session, and the
// hint binds at session creation only.
func TestServeForecastHint(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	if len(snaps) > 8 {
		snaps = snaps[:8]
	}
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hint := &api.ForecastConfig{Predictor: forecast.PredictorHolt}
	predictive, err := control.NewSession(core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := predictive.EnableForecast(hint.Config()); err != nil {
		t.Fatal(err)
	}
	reactive, err := control.NewSession(core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}

	diverged := false
	for i, snap := range snaps {
		req := &api.PlanRequest{ClusterID: "pred", Snapshot: snap}
		if i == 0 {
			req.Forecast = hint
		}
		_, gotPlan := postPlan(t, ts.URL, req)
		wirePlan, _, err := predictive.Propose(snap)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(wirePlan)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotPlan, want) {
			t.Fatalf("cycle %d: serve plan differs from in-process forecast session", i)
		}
		reactivePlan, _, err := reactive.Propose(snap)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := json.Marshal(reactivePlan)
		if !bytes.Equal(gotPlan, rb) {
			diverged = true
		}
	}
	// If the hint were silently dropped the serve session would be
	// reactive — and the comparison above would still pass whenever the
	// predictor happens to echo observations. Demand it visibly predicts.
	if !diverged {
		t.Error("forecast-hinted session never diverged from the reactive plan sequence")
	}

	// A later request with a different hint keeps the session's config.
	postPlan(t, ts.URL, &api.PlanRequest{
		ClusterID: "pred", Snapshot: snaps[len(snaps)-1],
		Forecast: &api.ForecastConfig{Predictor: forecast.PredictorConstant},
	})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != 1 {
		t.Fatalf("sessions: %+v", stats.Sessions)
	}
	if got := stats.Sessions[0].ForecastPredictor; got != forecast.PredictorHolt {
		t.Errorf("stats forecastPredictor = %q, want %q", got, forecast.PredictorHolt)
	}

	// An invalid hint is a 400 at the codec layer.
	var buf bytes.Buffer
	if err := api.EncodePlanRequest(&buf, &api.PlanRequest{
		ClusterID: "bad", Snapshot: snaps[0],
		Forecast: &api.ForecastConfig{Predictor: "arima"},
	}); err != nil {
		t.Fatal(err)
	}
	bad, err := http.Post(ts.URL+"/v1/plan", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid forecast hint: status %d, want 400", bad.StatusCode)
	}
}

// TestServeForecastDefault: a daemon-wide Options.Forecast applies to
// sessions created without a hint, and a per-request hint overrides it.
func TestServeForecastDefault(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	def := forecast.Config{Predictor: forecast.PredictorAR, AROrder: 2, CorrectionAlpha: 0.25}
	srv := New(Options{Forecast: &def})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, gotPlan := postPlan(t, ts.URL, &api.PlanRequest{ClusterID: "a", Snapshot: snaps[0]})
	sess, err := control.NewSession(core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.EnableForecast(def); err != nil {
		t.Fatal(err)
	}
	wirePlan, _, err := sess.Propose(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(wirePlan)
	if !bytes.Equal(gotPlan, want) {
		t.Error("daemon-default forecast plan differs from in-process session")
	}

	// A hint on a new cluster overrides the daemon default.
	postPlan(t, ts.URL, &api.PlanRequest{
		ClusterID: "b", Snapshot: snaps[0],
		Forecast: &api.ForecastConfig{Predictor: forecast.PredictorConstant},
	})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, ss := range stats.Sessions {
		got[ss.ClusterID] = ss.ForecastPredictor
	}
	if got["a"] != forecast.PredictorAR || got["b"] != forecast.PredictorConstant {
		t.Errorf("forecast predictors by cluster = %v, want a:ar b:constant", got)
	}
}

// TestServeForecastRestart: forecast state rides the durable
// checkpoint — a daemon killed mid-sequence and restarted over the
// same state dir continues the predictive plan sequence byte-identical
// to an uninterrupted reference daemon.
func TestServeForecastRestart(t *testing.T) {
	snaps := captureSnapshots(t, func() core.Controller { return core.New(core.DefaultConfig()) })
	cfg := forecast.Config{Predictor: forecast.PredictorHolt, CorrectionAlpha: 0.25}
	stateDir := t.TempDir()

	ref := httptest.NewServer(New(Options{Forecast: &cfg}).Handler())
	defer ref.Close()

	drive := func(url string, snap *api.Snapshot, cycle int) []byte {
		t.Helper()
		resp, raw := postPlan(t, url, &api.PlanRequest{ClusterID: "f", Snapshot: snap})
		if resp.Cycle != cycle {
			t.Fatalf("cycle %d, want %d", resp.Cycle, cycle)
		}
		return raw
	}

	half := len(snaps) / 2
	if half == 0 {
		t.Fatal("golden run too short to split")
	}
	srvA := httptest.NewServer(New(Options{Forecast: &cfg, StateDir: stateDir}).Handler())
	for i := 0; i < half; i++ {
		want := drive(ref.URL, snaps[i], i+1)
		got := drive(srvA.URL, snaps[i], i+1)
		if !bytes.Equal(got, want) {
			t.Fatalf("cycle %d (pre-kill): predictive plan differs from uninterrupted reference", i)
		}
	}
	// kill -9: process state vanishes; only StateDir survives. The
	// restarted daemon deliberately gets NO Options.Forecast — the
	// checkpointed forecast state alone must re-arm prediction.
	srvA.Close()

	srvB := httptest.NewServer(New(Options{StateDir: stateDir}).Handler())
	defer srvB.Close()
	for i := half; i < len(snaps); i++ {
		want := drive(ref.URL, snaps[i], i+1)
		got := drive(srvB.URL, snaps[i], i+1)
		if !bytes.Equal(got, want) {
			t.Fatalf("cycle %d (post-restart): predictive plan differs from uninterrupted reference", i)
		}
	}

	resp, err := http.Get(srvB.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != 1 || stats.Sessions[0].ForecastPredictor != forecast.PredictorHolt {
		t.Errorf("restored session stats = %+v, want holt predictor", stats.Sessions)
	}
}

// Package serve implements the placement daemon behind
// cmd/slaplace-serve: an HTTP front end that multiplexes long-lived
// planning sessions (internal/control.Session) keyed by cluster ID.
//
// Endpoints (schema in package api):
//
//	POST /v1/plan     plan one cycle for a cluster. The body is an
//	                  api.PlanRequest: a full snapshot, or a delta
//	                  against the session's retained state. The
//	                  response carries the plan (unless a delta reply
//	                  was requested), the typed action delta against
//	                  the session's previous plan, and reuse stats.
//	GET  /v1/healthz  liveness plus schema version and session count.
//	GET  /v1/stats    per-session cycle and plan-reuse statistics.
//
//	GET  /v1/sessions/{cluster}/checkpoint
//	                  export the cluster's session as an api.Checkpoint
//	                  — everything another daemon needs to continue the
//	                  plan sequence byte for byte.
//	PUT  /v1/sessions/{cluster}/checkpoint
//	                  restore a checkpoint as a new session (409 when
//	                  the cluster already has one) — the migration path
//	                  between replicas.
//
// Documents are JSON by default; a client may negotiate the compact
// binary codec per request ("Content-Type: application/x-slaplace-binary"
// for the body it sends, "Accept: ..." for the response it wants). The
// two codecs are bit-equivalent — plans cannot differ by transport.
//
// Sessions are created on first use per cluster ID and retain the
// controller's incremental state across requests — a steady-state
// cluster pays the carry-over re-plan price, not the from-scratch
// price, on every cycle. Requests for the same cluster serialize on a
// per-session lock; distinct clusters plan concurrently (session
// creation does its heavy work outside the server's session-table
// lock, so a thousand clusters can come up without queueing on it). A
// plan request may carry a "shards" hint: the session created from it
// plans the cluster as that many concurrent partitions
// (internal/shard) — the scale mode for 10k+-node snapshots.
//
// With Options.StateDir set the daemon is durable: each session's
// checkpoint is written there (atomically, every CheckpointEvery
// cycles) and sessions are restored from it on first use after a
// restart — kill -9 loses nothing but the cycles since the last
// checkpoint write.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slaplace/api"
	"slaplace/internal/control"
	"slaplace/internal/core"
	"slaplace/internal/forecast"
	"slaplace/internal/shard"
)

// DefaultMaxBodyBytes bounds a plan request body (64 MiB fits a
// snapshot of several hundred thousand jobs).
const DefaultMaxBodyBytes = 64 << 20

// Options configures a Server.
type Options struct {
	// NewController builds the controller for a new session. nil means
	// the paper's placement controller with the default configuration.
	NewController func() core.Controller
	// MaxSessions caps concurrent sessions; 0 means unlimited. A plan
	// request for a new cluster beyond the cap is rejected with 429.
	MaxSessions int
	// MaxBodyBytes caps a request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// StateDir, when set, makes sessions durable: checkpoints are
	// written there and restored from there on first use. Must exist.
	StateDir string
	// CheckpointEvery is the cycle interval between automatic
	// checkpoint writes when StateDir is set; 0 means every cycle.
	CheckpointEvery int
	// ReplicaID identifies this daemon in a replica fleet — by
	// convention its advertised base URL ("http://host:port"), so the
	// ID in a claim file doubles as the 421 routing hint. With StateDir
	// also set, per-cluster claim files make adoption exactly-once
	// across replicas sharing the dir (see claim.go). Empty keeps the
	// single-daemon claimless behavior.
	ReplicaID string
	// Peers are the other replicas' base URLs — the drain hand-off
	// targets, ranked per cluster by the same rendezvous hash the
	// coordinator routes with.
	Peers []string
	// StaleClaimAfter is the claim age past which another replica may
	// take a cluster over (its owner refreshes on every checkpoint
	// write); 0 means 10s.
	StaleClaimAfter time.Duration
	// Forecast, when set, enables predictive planning on every session
	// this daemon creates fresh: snapshots plan against forecast demand
	// instead of observed demand. A plan request's own forecast hint
	// wins over this default, and a restored checkpoint's forecast
	// state wins over both (the restored session must continue the
	// plan sequence it checkpointed, whatever this daemon's flags say).
	Forecast *forecast.Config
	// Logf logs operational events (corrupt state files, checkpoint
	// write failures). nil discards.
	Logf func(format string, args ...any)
}

// Server multiplexes planning sessions keyed by cluster ID.
type Server struct {
	opts Options

	// restoring is set from construction (with a StateDir) until
	// ScanState finishes; draining from Drain onward. Both turn
	// /v1/readyz into a 503 — liveness (/v1/healthz) stays 200.
	restoring atomic.Bool
	draining  atomic.Bool

	mu       sync.Mutex
	sessions map[string]*clusterSession
}

// clusterSession is one hosted session plus what the wire protocol
// layers on top: the previous wire plan (for response deltas) and the
// checkpoint bookkeeping, under a lock that serializes requests for
// the same cluster. The zero value is a placeholder: the creating
// request initializes it through once, outside the server's session-
// table lock, and ready flips only on success.
type clusterSession struct {
	once    sync.Once
	initErr error
	ready   atomic.Bool

	mu     sync.Mutex
	sess   *control.Session
	shards int // partition count when planning sharded, else 0
	// sharded is the session's shard controller when shards > 0 (the
	// stats endpoint reads its partition diagnostics; checkpoints carry
	// its boundary state).
	sharded *shard.Controller
	prev    *api.Plan
	// ckCycle is the session cycle of the last checkpoint write.
	ckCycle int
}

// New builds a server.
func New(opts Options) *Server {
	if opts.NewController == nil {
		opts.NewController = func() core.Controller { return core.New(core.DefaultConfig()) }
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.CheckpointEvery < 1 {
		opts.CheckpointEvery = 1
	}
	if opts.StaleClaimAfter <= 0 {
		opts.StaleClaimAfter = 10 * time.Second
	}
	s := &Server{opts: opts, sessions: make(map[string]*clusterSession)}
	// A durable server starts not-ready until its owner runs ScanState;
	// a stateless one has nothing to restore.
	s.restoring.Store(opts.StateDir != "")
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/sessions/{cluster}/checkpoint", s.handleCheckpointGet)
	mux.HandleFunc("PUT /v1/sessions/{cluster}/checkpoint", s.handleCheckpointPut)
	return mux
}

// session returns the cluster's session, creating (and, with a state
// dir, restoring) it on first use. shards is the request's sharding
// hint: a session created with shards > 1 plans the cluster as that
// many concurrent partitions (internal/shard); a restored checkpoint's
// own shard count wins over the hint. fc is the request's forecast
// hint with the same precedence: it beats the daemon's Forecast
// option, and a restored checkpoint's forecast state beats both. The
// shape binds at creation; later requests for the same cluster keep
// it.
//
// Only the session-table insert runs under the server lock. The
// expensive part — building the controller, and on restore re-planning
// the checkpointed snapshot — runs outside it, once, with concurrent
// requests for the same new cluster waiting on the session's own init
// and requests for other clusters unaffected.
func (s *Server) session(clusterID string, shards int, fc *api.ForecastConfig) (*clusterSession, int, error) {
	s.mu.Lock()
	cs, ok := s.sessions[clusterID]
	if !ok {
		if s.draining.Load() {
			s.mu.Unlock()
			return nil, http.StatusServiceUnavailable,
				fmt.Errorf("serve: draining, not taking new clusters")
		}
		if s.opts.MaxSessions > 0 && len(s.sessions) >= s.opts.MaxSessions {
			s.mu.Unlock()
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("serve: session limit %d reached", s.opts.MaxSessions)
		}
		cs = &clusterSession{}
		s.sessions[clusterID] = cs
	}
	s.mu.Unlock()

	cs.once.Do(func() { cs.initErr = s.initSession(cs, clusterID, shards, fc) })
	if cs.initErr != nil {
		// Evict the failed placeholder so a later request can retry.
		s.mu.Lock()
		if s.sessions[clusterID] == cs {
			delete(s.sessions, clusterID)
		}
		s.mu.Unlock()
		status := http.StatusInternalServerError
		var notOwner *notOwnerError
		if errors.As(cs.initErr, &notOwner) {
			// Not a failure: the cluster lives on another replica. 421
			// plus the owner hint sends the client straight there.
			status = http.StatusMisdirectedRequest
		}
		return nil, status, cs.initErr
	}
	return cs, http.StatusOK, nil
}

// initSession builds a placeholder session's controller and state:
// from the state-dir checkpoint when one exists and is usable, fresh
// otherwise. A corrupt or mismatched checkpoint is logged and ignored
// — a daemon must come up after a crash even if the disk lost a race
// with it.
func (s *Server) initSession(cs *clusterSession, clusterID string, shards int, fc *api.ForecastConfig) error {
	// Claim before touching state: with replicas sharing the state dir,
	// exactly one may adopt (or create) a cluster at a time.
	if err := s.acquireClaim(clusterID); err != nil {
		return err
	}
	if s.opts.StateDir != "" {
		ck, err := s.readCheckpoint(clusterID)
		switch {
		case err != nil:
			s.logf("serve: checkpoint for %q unreadable, starting fresh: %v", clusterID, err)
		case ck != nil:
			if err := s.restoreInto(cs, ck); err != nil {
				s.logf("serve: checkpoint for %q unusable, starting fresh: %v", clusterID, err)
			} else {
				cs.ready.Store(true)
				return nil
			}
		}
	}
	var ctrl core.Controller
	var sharded *shard.Controller
	if shards > 1 {
		sharded = shard.New(shard.Config{Shards: shards, NewController: s.opts.NewController})
		ctrl = sharded
	} else {
		ctrl = s.opts.NewController()
		shards = 0
	}
	sess, err := control.NewSession(ctrl)
	if err != nil {
		return err
	}
	// Forecasting: the request hint wins over the daemon default (the
	// restore path never reaches here — a checkpoint's forecast state
	// rides control.RestoreSession).
	fcfg := s.opts.Forecast
	if fc != nil {
		cfg := fc.Config()
		fcfg = &cfg
	}
	if fcfg != nil {
		if err := sess.EnableForecast(*fcfg); err != nil {
			return err
		}
	}
	cs.sess, cs.shards, cs.sharded = sess, shards, sharded
	cs.ready.Store(true)
	return nil
}

// restoreInto rebuilds a session from a checkpoint: the sharded
// partition boundaries first (they must be staged before the restore
// re-plan), then the control session — which re-plans the checkpointed
// snapshot to warm the controller and digest-checks the result against
// the checkpointed plan.
func (s *Server) restoreInto(cs *clusterSession, ck *api.Checkpoint) error {
	var ctrl core.Controller
	var sharded *shard.Controller
	shards := ck.Shards
	if shards > 1 {
		sharded = shard.New(shard.Config{Shards: shards, NewController: s.opts.NewController})
		if err := sharded.RestoreBounds(ck.ShardBounds, ck.ShardReshards); err != nil {
			return err
		}
		ctrl = sharded
	} else {
		ctrl = s.opts.NewController()
		shards = 0
	}
	sess, err := control.RestoreSession(ctrl, ck)
	if err != nil {
		return err
	}
	cs.sess, cs.shards, cs.sharded = sess, shards, sharded
	cs.prev = ck.Plan
	cs.ckCycle = ck.Cycle
	return nil
}

// lookup returns the cluster's session only if it exists and finished
// initializing.
func (s *Server) lookup(clusterID string) *clusterSession {
	s.mu.Lock()
	cs := s.sessions[clusterID]
	s.mu.Unlock()
	if cs == nil || !cs.ready.Load() {
		return nil
	}
	return cs
}

// httpError writes a JSON error body (errors are never binary). A
// notOwnerError carries the owning replica's ID into the body's owner
// field — the hint the retrying client follows after a 421.
func httpError(w http.ResponseWriter, status int, err error) {
	resp := api.ErrorResponse{Error: err.Error()}
	var notOwner *notOwnerError
	if errors.As(err, &notOwner) {
		resp.Owner = notOwner.owner
	}
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// writeJSON writes one JSON response document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	data = append(data, '\n')
	_, _ = w.Write(data)
}

// sendsBinary reports whether the request body is in the binary codec.
func sendsBinary(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), api.ContentTypeBinary)
}

// acceptsBinary reports whether the client asked for a binary response.
func acceptsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), api.ContentTypeBinary)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req *api.PlanRequest
	var err error
	if sendsBinary(r) {
		req, err = api.DecodePlanRequestBinary(body)
	} else {
		req, err = api.DecodePlanRequest(body)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	clusterID := req.ClusterID
	if clusterID == "" {
		clusterID = "default"
	}
	cs, status, err := s.session(clusterID, req.Shards, req.Forecast)
	if err != nil {
		httpError(w, status, err)
		return
	}

	cs.mu.Lock()
	defer cs.mu.Unlock()
	var plan *api.Plan
	var stats core.PlanStats
	if req.Snapshot != nil {
		plan, stats, err = cs.sess.Propose(req.Snapshot)
	} else {
		plan, stats, err = cs.sess.ProposeDelta(req.Delta)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, control.ErrBaseCycleMismatch) ||
			errors.Is(err, control.ErrNoBaseSnapshot) ||
			errors.Is(err, control.ErrTimeRegression) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}

	resp := &api.PlanResponse{
		SchemaVersion: api.SchemaVersion,
		ClusterID:     clusterID,
		Cycle:         cs.sess.Cycles(),
	}
	if cs.sess.TracksStats() {
		resp.PlanMode = stats.LastMode.String()
		resp.Stats = wireStats(stats)
	}
	// On the session's first cycle prev is nil and Diff returns the
	// bootstrap delta against the empty placement, so a delta-reply
	// client always receives something enactable.
	resp.Delta = plan.Diff(cs.prev)
	if req.Reply != api.ReplyDelta {
		resp.Plan = plan
	}
	cs.prev = plan

	// Durability: roll the cluster's state file forward on schedule. A
	// write failure costs durability, not availability — the plan
	// response still goes out.
	if s.opts.StateDir != "" && cs.sess.Cycles()-cs.ckCycle >= s.opts.CheckpointEvery {
		if err := s.checkpointLocked(cs, clusterID); err != nil {
			s.logf("serve: checkpoint write for %q failed: %v", clusterID, err)
		}
	}

	if acceptsBinary(r) {
		w.Header().Set("Content-Type", api.ContentTypeBinary)
		if err := api.EncodePlanResponseBinary(w, resp); err != nil {
			s.logf("serve: binary response for %q failed: %v", clusterID, err)
		}
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, &api.HealthResponse{
		Status:        "ok",
		SchemaVersion: api.SchemaVersion,
		Sessions:      n,
		ReplicaID:     s.opts.ReplicaID,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	byID := make(map[string]*clusterSession, len(s.sessions))
	for id, cs := range s.sessions {
		if !cs.ready.Load() {
			continue // mid-initialization placeholder
		}
		ids = append(ids, id)
		byID[id] = cs
	}
	s.mu.Unlock()
	sort.Strings(ids)

	resp := &api.StatsResponse{SchemaVersion: api.SchemaVersion, Sessions: []api.SessionStats{}}
	for _, id := range ids {
		cs := byID[id]
		ss := api.SessionStats{
			ClusterID:  id,
			Controller: cs.sess.Name(),
			Cycles:     cs.sess.Cycles(),
			Shards:     cs.shards,
		}
		if cs.sharded != nil {
			d := cs.sharded.Diagnostics()
			ss.EffectiveShards = d.EffectiveShards
			ss.ShardLoadSpread = d.LoadSpread
			ss.Reshards = d.Reshards
		}
		if cs.sess.TracksStats() {
			ss.Stats = wireStats(cs.sess.PlanStats())
		}
		if cfg, on := cs.sess.ForecastConfig(); on {
			ss.ForecastPredictor = cfg.Predictor
		}
		resp.Sessions = append(resp.Sessions, ss)
	}
	writeJSON(w, resp)
}

// NewHTTPServer wraps a handler in an http.Server with server-side
// timeouts set — without them a slow-loris client trickling a request
// byte at a time holds a connection (and its daemon goroutine) open
// forever. writeTimeout must cover the slowest plan cycle, so its
// default is generous.
func NewHTTPServer(h http.Handler, readTimeout, writeTimeout time.Duration) *http.Server {
	if readTimeout <= 0 {
		readTimeout = 30 * time.Second
	}
	if writeTimeout <= 0 {
		writeTimeout = 2 * time.Minute
	}
	headerTimeout := readTimeout
	if headerTimeout > 10*time.Second {
		headerTimeout = 10 * time.Second
	}
	return &http.Server{
		Handler:           h,
		ReadTimeout:       readTimeout,
		ReadHeaderTimeout: headerTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}

// wireStats converts controller plan stats to their wire form.
func wireStats(stats core.PlanStats) *api.PlanStats {
	return &api.PlanStats{
		Full:               stats.Full,
		Incremental:        stats.Incremental,
		Replayed:           stats.Replayed,
		LastMode:           stats.LastMode.String(),
		LastDemandDeltaMHz: float64(stats.LastDemandDelta),
	}
}

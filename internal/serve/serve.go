// Package serve implements the placement daemon behind
// cmd/slaplace-serve: an HTTP front end that multiplexes long-lived
// planning sessions (internal/control.Session) keyed by cluster ID.
//
// Endpoints (all JSON, schema in package api):
//
//	POST /v1/plan     plan one cycle for a cluster. The body is an
//	                  api.PlanRequest: a full snapshot, or a delta
//	                  against the session's retained state. The
//	                  response carries the plan (unless a delta reply
//	                  was requested), the typed action delta against
//	                  the session's previous plan, and reuse stats.
//	GET  /v1/healthz  liveness plus schema version and session count.
//	GET  /v1/stats    per-session cycle and plan-reuse statistics.
//
// Sessions are created on first use per cluster ID and retain the
// controller's incremental state across requests — a steady-state
// cluster pays the carry-over re-plan price, not the from-scratch
// price, on every cycle. Requests for the same cluster serialize on a
// per-session lock; distinct clusters plan concurrently. A plan
// request may carry a "shards" hint: the session created from it
// plans the cluster as that many concurrent partitions
// (internal/shard) — the scale mode for 10k+-node snapshots.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"slaplace/api"
	"slaplace/internal/control"
	"slaplace/internal/core"
	"slaplace/internal/shard"
)

// DefaultMaxBodyBytes bounds a plan request body (64 MiB fits a
// snapshot of several hundred thousand jobs).
const DefaultMaxBodyBytes = 64 << 20

// Options configures a Server.
type Options struct {
	// NewController builds the controller for a new session. nil means
	// the paper's placement controller with the default configuration.
	NewController func() core.Controller
	// MaxSessions caps concurrent sessions; 0 means unlimited. A plan
	// request for a new cluster beyond the cap is rejected with 429.
	MaxSessions int
	// MaxBodyBytes caps a request body; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

// Server multiplexes planning sessions keyed by cluster ID.
type Server struct {
	opts Options

	mu       sync.Mutex
	sessions map[string]*clusterSession
}

// clusterSession is one hosted session plus what the wire protocol
// layers on top: the previous wire plan (for response deltas), under a
// lock that serializes requests for the same cluster.
type clusterSession struct {
	mu     sync.Mutex
	sess   *control.Session
	shards int // partition count when planning sharded, else 0
	// sharded is the session's shard controller when shards > 0 (the
	// stats endpoint reads its partition diagnostics).
	sharded *shard.Controller
	prev    *api.Plan
}

// New builds a server.
func New(opts Options) *Server {
	if opts.NewController == nil {
		opts.NewController = func() core.Controller { return core.New(core.DefaultConfig()) }
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return &Server{opts: opts, sessions: make(map[string]*clusterSession)}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// session returns the cluster's session, creating it on first use.
// shards is the request's sharding hint: a session created with
// shards > 1 plans the cluster as that many concurrent partitions
// (internal/shard). The hint binds at creation; later requests for
// the same cluster keep the session's original shape.
func (s *Server) session(clusterID string, shards int) (*clusterSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs, ok := s.sessions[clusterID]; ok {
		return cs, nil
	}
	if s.opts.MaxSessions > 0 && len(s.sessions) >= s.opts.MaxSessions {
		return nil, fmt.Errorf("serve: session limit %d reached", s.opts.MaxSessions)
	}
	var ctrl core.Controller
	var sharded *shard.Controller
	if shards > 1 {
		sharded = shard.New(shard.Config{Shards: shards, NewController: s.opts.NewController})
		ctrl = sharded
	} else {
		ctrl = s.opts.NewController()
		shards = 0
	}
	sess, err := control.NewSession(ctrl)
	if err != nil {
		return nil, err
	}
	cs := &clusterSession{sess: sess, shards: shards, sharded: sharded}
	s.sessions[clusterID] = cs
	return cs, nil
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes one JSON response document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	data = append(data, '\n')
	_, _ = w.Write(data)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := api.DecodePlanRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	clusterID := req.ClusterID
	if clusterID == "" {
		clusterID = "default"
	}
	cs, err := s.session(clusterID, req.Shards)
	if err != nil {
		httpError(w, http.StatusTooManyRequests, err)
		return
	}

	cs.mu.Lock()
	defer cs.mu.Unlock()
	var plan *api.Plan
	var stats core.PlanStats
	if req.Snapshot != nil {
		plan, stats, err = cs.sess.Propose(req.Snapshot)
	} else {
		plan, stats, err = cs.sess.ProposeDelta(req.Delta)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, control.ErrBaseCycleMismatch) ||
			errors.Is(err, control.ErrNoBaseSnapshot) ||
			errors.Is(err, control.ErrTimeRegression) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}

	resp := &api.PlanResponse{
		SchemaVersion: api.SchemaVersion,
		ClusterID:     clusterID,
		Cycle:         cs.sess.Cycles(),
	}
	if cs.sess.TracksStats() {
		resp.PlanMode = stats.LastMode.String()
		resp.Stats = wireStats(stats)
	}
	// On the session's first cycle prev is nil and Diff returns the
	// bootstrap delta against the empty placement, so a delta-reply
	// client always receives something enactable.
	resp.Delta = plan.Diff(cs.prev)
	if req.Reply != api.ReplyDelta {
		resp.Plan = plan
	}
	cs.prev = plan
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, &api.HealthResponse{
		Status:        "ok",
		SchemaVersion: api.SchemaVersion,
		Sessions:      n,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	byID := make(map[string]*clusterSession, len(s.sessions))
	for id, cs := range s.sessions {
		ids = append(ids, id)
		byID[id] = cs
	}
	s.mu.Unlock()
	sort.Strings(ids)

	resp := &api.StatsResponse{SchemaVersion: api.SchemaVersion, Sessions: []api.SessionStats{}}
	for _, id := range ids {
		cs := byID[id]
		ss := api.SessionStats{
			ClusterID:  id,
			Controller: cs.sess.Name(),
			Cycles:     cs.sess.Cycles(),
			Shards:     cs.shards,
		}
		if cs.sharded != nil {
			d := cs.sharded.Diagnostics()
			ss.EffectiveShards = d.EffectiveShards
			ss.ShardLoadSpread = d.LoadSpread
			ss.Reshards = d.Reshards
		}
		if cs.sess.TracksStats() {
			ss.Stats = wireStats(cs.sess.PlanStats())
		}
		resp.Sessions = append(resp.Sessions, ss)
	}
	writeJSON(w, resp)
}

// wireStats converts controller plan stats to their wire form.
func wireStats(stats core.PlanStats) *api.PlanStats {
	return &api.PlanStats{
		Full:               stats.Full,
		Incremental:        stats.Incremental,
		Replayed:           stats.Replayed,
		LastMode:           stats.LastMode.String(),
		LastDemandDeltaMHz: float64(stats.LastDemandDelta),
	}
}

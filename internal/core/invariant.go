package core

import (
	"fmt"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// CheckPlan verifies the executor-facing invariants every controller's
// plan must satisfy against the snapshot it was planned from:
//
//  1. every action references a job, application and node the snapshot
//     knows about (a running job's *current* node may be unknown — that
//     is the crash-stranded case the plan is allowed to clean up — but
//     placement targets must exist),
//  2. no job is lost or duplicated: at most one action per job, and the
//     action matches the job's snapshot state (start a Pending job,
//     resume a Suspended one, suspend/migrate/reshare a Running one),
//  3. at most one action per (application, node) instance, adding only
//     where no instance runs and removing/resharing only where one does,
//  4. shares are non-negative,
//  5. replaying the plan two-phase (frees land before placements, the
//     executor's contract) leaves no node over its memory capacity and
//     no node's job tier alone over its CPU power.
//
// It returns nil when the plan is sound, or an error naming the first
// violation. The conformance suite, the shard merge tests and the chaos
// replay harness all run plans through this single checker.
func CheckPlan(st *State, plan *Plan) error {
	if plan == nil {
		return fmt.Errorf("core: nil plan")
	}
	nodes := make(map[cluster.NodeID]NodeInfo, len(st.Nodes))
	for _, n := range st.Nodes {
		nodes[n.ID] = n
	}
	jobs := make(map[batch.JobID]JobInfo, len(st.Jobs))
	for _, j := range st.Jobs {
		jobs[j.ID] = j
	}
	apps := make(map[trans.AppID]AppInfo, len(st.Apps))
	for _, a := range st.Apps {
		apps[a.ID] = a
	}

	jobActed := make(map[batch.JobID]Action)
	actJob := func(act Action, id batch.JobID, want batch.State) error {
		j, ok := jobs[id]
		if !ok {
			return fmt.Errorf("core: %v references unknown job %s", act, id)
		}
		if prev, dup := jobActed[id]; dup {
			return fmt.Errorf("core: job %s receives two actions: %v then %v", id, prev, act)
		}
		jobActed[id] = act
		if j.State != want {
			return fmt.Errorf("core: %v targets %v job %s (want %v)", act, j.State, id, want)
		}
		return nil
	}
	instActed := make(map[trans.AppID]map[cluster.NodeID]bool)
	actInst := func(act Action, id trans.AppID, n cluster.NodeID, wantPresent bool) error {
		a, ok := apps[id]
		if !ok {
			return fmt.Errorf("core: %v references unknown app %s", act, id)
		}
		if _, ok := nodes[n]; !ok {
			return fmt.Errorf("core: %v references unknown node %s", act, n)
		}
		if instActed[id][n] {
			return fmt.Errorf("core: instance %s/%s receives a second action %v", id, n, act)
		}
		if instActed[id] == nil {
			instActed[id] = make(map[cluster.NodeID]bool)
		}
		instActed[id][n] = true
		if _, present := a.Instances[n]; present != wantPresent {
			if wantPresent {
				return fmt.Errorf("core: %v targets %s with no instance on %s", act, id, n)
			}
			return fmt.Errorf("core: %v adds a duplicate instance of %s on %s", act, id, n)
		}
		return nil
	}
	checkNode := func(act Action, n cluster.NodeID) error {
		if _, ok := nodes[n]; !ok {
			return fmt.Errorf("core: %v references unknown node %s", act, n)
		}
		return nil
	}
	checkShare := func(act Action, s res.CPU) error {
		if s < 0 {
			return fmt.Errorf("core: %v has negative share %v", act, s)
		}
		return nil
	}

	for _, act := range plan.Actions {
		var err error
		switch a := act.(type) {
		case StartJob:
			if err = actJob(a, a.Job, batch.Pending); err == nil {
				if err = checkNode(a, a.Node); err == nil {
					err = checkShare(a, a.Share)
				}
			}
		case ResumeJob:
			if err = actJob(a, a.Job, batch.Suspended); err == nil {
				if err = checkNode(a, a.Node); err == nil {
					err = checkShare(a, a.Share)
				}
			}
		case SuspendJob:
			err = actJob(a, a.Job, batch.Running)
		case MigrateJob:
			if err = actJob(a, a.Job, batch.Running); err == nil {
				if err = checkNode(a, a.Dst); err == nil {
					err = checkShare(a, a.Share)
				}
			}
		case SetJobShare:
			if err = actJob(a, a.Job, batch.Running); err == nil {
				err = checkShare(a, a.Share)
			}
		case AddInstance:
			if err = actInst(a, a.App, a.Node, false); err == nil {
				err = checkShare(a, a.Share)
			}
		case RemoveInstance:
			err = actInst(a, a.App, a.Node, true)
		case SetInstanceShare:
			if err = actInst(a, a.App, a.Node, true); err == nil {
				err = checkShare(a, a.Share)
			}
		default:
			err = fmt.Errorf("core: unknown action type %T", act)
		}
		if err != nil {
			return err
		}
	}
	return checkOccupancy(st, plan, nodes)
}

// checkOccupancy replays the plan two-phase onto the snapshot — frees
// land before placements, the executor's sequencing contract — and
// verifies no node ends over its memory capacity and no node's job
// tier alone is granted more CPU than the node has. (Web instance CPU
// shares overlap the job tier by policy design: full-speed baselines
// lean on the vm layer's proportional rescaling, so the web+jobs CPU
// total is a policy property, not an invariant.)
func checkOccupancy(st *State, plan *Plan, nodes map[cluster.NodeID]NodeInfo) error {
	type book struct {
		mem res.Memory
		cpu res.CPU // job-tier shares only
	}
	books := make(map[cluster.NodeID]*book, len(st.Nodes))
	for _, n := range st.Nodes {
		books[n.ID] = &book{}
	}

	// Index plan decisions per job / instance.
	suspended := map[batch.JobID]bool{}
	migrated := map[batch.JobID]cluster.NodeID{}
	newShare := map[batch.JobID]res.CPU{}
	started := map[batch.JobID]StartJob{}
	resumed := map[batch.JobID]ResumeJob{}
	migShare := map[batch.JobID]res.CPU{}
	instRemoved := map[trans.AppID]map[cluster.NodeID]bool{}
	instAdded := []AddInstance{}
	for _, act := range plan.Actions {
		switch a := act.(type) {
		case SuspendJob:
			suspended[a.Job] = true
		case MigrateJob:
			migrated[a.Job] = a.Dst
			migShare[a.Job] = a.Share
		case SetJobShare:
			newShare[a.Job] = a.Share
		case StartJob:
			started[a.Job] = a
		case ResumeJob:
			resumed[a.Job] = a
		case RemoveInstance:
			if instRemoved[a.App] == nil {
				instRemoved[a.App] = map[cluster.NodeID]bool{}
			}
			instRemoved[a.App][a.Node] = true
		case AddInstance:
			instAdded = append(instAdded, a)
		}
	}

	// Jobs after the plan. Bookings on nodes the snapshot does not know
	// are skipped: a running job stranded on a vanished node occupies no
	// live capacity.
	for _, j := range st.Jobs {
		switch {
		case suspended[j.ID]:
			// Off the node.
		case j.State == batch.Running:
			node, share := j.Node, j.Share
			if dst, ok := migrated[j.ID]; ok {
				node, share = dst, migShare[j.ID]
			} else if s, ok := newShare[j.ID]; ok {
				share = s
			}
			if b, ok := books[node]; ok {
				b.mem += j.Mem
				b.cpu += share
			}
		case j.State == batch.Pending:
			if a, ok := started[j.ID]; ok {
				if b, ok := books[a.Node]; ok {
					b.mem += j.Mem
					b.cpu += a.Share
				}
			}
		case j.State == batch.Suspended:
			if a, ok := resumed[j.ID]; ok {
				if b, ok := books[a.Node]; ok {
					b.mem += j.Mem
					b.cpu += a.Share
				}
			}
		}
	}
	// Web instances after the plan (memory only, per the note above).
	for _, app := range st.Apps {
		for node := range app.Instances {
			if instRemoved[app.ID][node] {
				continue
			}
			if b, ok := books[node]; ok {
				b.mem += app.InstanceMem
			}
		}
	}
	for _, a := range instAdded {
		var mem res.Memory
		for _, app := range st.Apps {
			if app.ID == a.App {
				mem = app.InstanceMem
			}
		}
		if b, ok := books[a.Node]; ok {
			b.mem += mem
		}
	}

	for _, n := range st.Nodes {
		b := books[n.ID]
		if b.mem > n.Mem {
			return fmt.Errorf("core: node %s over memory: %v > %v", n.ID, b.mem, n.Mem)
		}
		if float64(b.cpu) > float64(n.CPU)*(1+1e-9) {
			return fmt.Errorf("core: node %s job tier over CPU: %v > %v", n.ID, b.cpu, n.CPU)
		}
	}
	return nil
}

// FreeingFirst verifies the strict list-level ordering that merged
// shard plans and wire-plan diffs promise: every freeing action
// (SuspendJob, RemoveInstance) precedes every non-freeing action
// (placements and share changes). Single-policy plans interleave frees
// with placements — the two-phase executor makes that safe — so this
// check applies only to outputs that document the global order.
func FreeingFirst(actions []Action) error {
	placed := false
	var firstPlace Action
	for _, act := range actions {
		switch act.(type) {
		case SuspendJob, RemoveInstance:
			if placed {
				return fmt.Errorf("core: freeing action %v after non-freeing action %v", act, firstPlace)
			}
		default:
			if !placed {
				placed = true
				firstPlace = act
			}
		}
	}
	return nil
}

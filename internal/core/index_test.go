package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// idxNodes builds n nodes with distinct IDs in order n000, n001, ...
func idxNodes(n int) []NodeInfo {
	out := make([]NodeInfo, n)
	for i := range out {
		out[i] = NodeInfo{ID: cluster.NodeID(fmt.Sprintf("n%03d", i)), CPU: 18000, Mem: 16000}
	}
	return out
}

// TestPickNodeTieBreaks pins the selection criterion the job index must
// reproduce: feasible memory first, then fewest planned jobs, then most
// free memory, then node order. Every case is checked against both the
// reference scan and the index.
func TestPickNodeTieBreaks(t *testing.T) {
	type nodeState struct {
		jobs int        // planned jobs on the node
		used res.Memory // memory already booked
	}
	cases := []struct {
		name  string
		nodes []nodeState
		mem   res.Memory
		want  cluster.NodeID // "" = nothing fits
	}{
		{
			name:  "infeasible-nodes-skipped",
			nodes: []nodeState{{jobs: 0, used: 14000}, {jobs: 5, used: 2000}},
			mem:   5000,
			want:  "n001", // n000 has fewer jobs but cannot fit the job
		},
		{
			name:  "fewest-jobs-beats-more-free",
			nodes: []nodeState{{jobs: 2, used: 0}, {jobs: 1, used: 8000}},
			mem:   5000,
			want:  "n001", // 1 job beats 2 jobs despite half the free memory
		},
		{
			name:  "job-count-tie-most-free-wins",
			nodes: []nodeState{{jobs: 1, used: 8000}, {jobs: 1, used: 2000}},
			mem:   5000,
			want:  "n001",
		},
		{
			name:  "full-tie-node-order-wins",
			nodes: []nodeState{{jobs: 1, used: 4000}, {jobs: 1, used: 4000}},
			mem:   5000,
			want:  "n000",
		},
		{
			name:  "nothing-fits",
			nodes: []nodeState{{jobs: 0, used: 13000}, {jobs: 0, used: 12000}},
			mem:   5000,
			want:  "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ls := NewLedgers(idxNodes(len(tc.nodes)))
			for i, nst := range tc.nodes {
				l, _ := ls.Get(cluster.NodeID(fmt.Sprintf("n%03d", i)))
				l.MemUsed = nst.used
				for j := 0; j < nst.jobs; j++ {
					l.Jobs = append(l.Jobs, &PlannedJob{})
				}
			}
			pj := &PlannedJob{Info: JobInfo{Mem: tc.mem}}
			if got := pickNodeScan(pj, ls, ls.Order()); got != tc.want {
				t.Errorf("scan picked %q, want %q", got, tc.want)
			}
			ix := &jobPickIndex{}
			ix.build(ls)
			defer ix.detach(ls)
			var got cluster.NodeID
			if l := ix.pick(tc.mem); l != nil {
				got = l.Info.ID
			}
			if got != tc.want {
				t.Errorf("index picked %q, want %q", got, tc.want)
			}
		})
	}
}

// TestJobPickIndexMatchesScan drives the index through a long random
// mutation sequence — the hooked Ledger methods, exactly as the
// placement phase uses them — and checks after every step that the
// index and the reference scan select the same node for a sweep of
// memory footprints.
func TestJobPickIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ls := NewLedgers(idxNodes(12))
	order := ls.Order()
	ix := &jobPickIndex{}
	ix.build(ls)
	defer ix.detach(ls)

	var records []*PlannedJob // records currently on some ledger
	onNode := map[*PlannedJob]*Ledger{}
	check := func(step int) {
		t.Helper()
		for _, mem := range []res.Memory{0, 1000, 5000, 9000, 16000, 17000} {
			pj := &PlannedJob{Info: JobInfo{Mem: mem}}
			want := pickNodeScan(pj, ls, order)
			var got cluster.NodeID
			if l := ix.pick(mem); l != nil {
				got = l.Info.ID
			}
			if got != want {
				t.Fatalf("step %d mem %v: index picked %q, scan %q", step, mem, got, want)
			}
		}
	}
	check(-1)
	for step := 0; step < 500; step++ {
		l, _ := ls.Get(order[rng.Intn(len(order))])
		switch rng.Intn(5) {
		case 0: // place a new job
			pj := &PlannedJob{Info: JobInfo{Mem: res.Memory(rng.Intn(4000) + 1000)}}
			if l.FreeMem() >= pj.Info.Mem {
				l.AddJob(pj)
				records = append(records, pj)
				onNode[pj] = l
			}
		case 1: // record a kept running job (residency pre-booked)
			pj := &PlannedJob{Info: JobInfo{Mem: res.Memory(rng.Intn(4000) + 1000)}}
			if l.FreeMem() >= pj.Info.Mem {
				l.Occupy(pj.Info)
				l.AppendJob(pj)
				records = append(records, pj)
				onNode[pj] = l
			}
		case 2: // evict: release residency without a record
			j := JobInfo{Mem: res.Memory(rng.Intn(3000))}
			if l.MemUsed >= j.Mem {
				l.Occupy(j)
				l.Release(j)
			}
		case 3: // migrate a record between ledgers
			if len(records) > 0 {
				pj := records[rng.Intn(len(records))]
				src := onNode[pj]
				dst := l
				if dst.FreeMem() >= pj.Info.Mem {
					src.RemoveJob(pj)
					dst.AddJob(pj)
					onNode[pj] = dst
				}
			}
		case 4: // book web instance memory
			if l.FreeMem() >= 1000 {
				l.BookMem(1000)
			}
		}
		check(step)
	}
}

// TestWebPickIndexMatchesSort checks that popping the web index yields
// candidates in exactly the order phaseWebPlacement used to build by
// sorting: most free memory first, ties by node ID.
func TestWebPickIndexMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		ls := NewLedgers(idxNodes(9))
		var want []cluster.NodeID
		ls.Each(func(l *Ledger) {
			l.MemUsed = res.Memory(rng.Intn(4) * 4000) // force ties
			want = append(want, l.Info.ID)
		})
		sort.SliceStable(want, func(i, j int) bool {
			li, _ := ls.Get(want[i])
			lj, _ := ls.Get(want[j])
			if li.FreeMem() != lj.FreeMem() {
				return li.FreeMem() > lj.FreeMem()
			}
			return want[i] < want[j]
		})
		ix := &webPickIndex{}
		ix.build(ls)
		for i, wantID := range want {
			top := ix.peek()
			if top == nil || top.Info.ID != wantID {
				t.Fatalf("trial %d pop %d: got %v, want %s", trial, i, top, wantID)
			}
			ix.popTop()
		}
		if ix.peek() != nil {
			t.Fatalf("trial %d: heap not drained", trial)
		}
		ix.detach(ls)
	}
}

// evictFixture builds a controller, a priority order and ledgers for
// eviction tests: the candidate at position 0, victims after it.
func evictFixture(t *testing.T, margin float64, victims []*PlannedJob) (*PlacementController, []*PlannedJob, *Ledgers, []int32) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.EvictionMargin = margin
	c := New(cfg)
	infos := make([]NodeInfo, 0, len(victims))
	seen := map[cluster.NodeID]bool{}
	for _, v := range victims {
		if !seen[v.Node] {
			infos = append(infos, NodeInfo{ID: v.Node, CPU: 18000, Mem: 16000})
			seen[v.Node] = true
		}
	}
	ls := NewLedgers(infos)
	for _, v := range victims {
		l, _ := ls.Get(v.Node)
		l.Occupy(v.Info)
	}
	// Fill every node to the brim so only an eviction can make room.
	ls.Each(func(l *Ledger) { l.MemUsed = l.Info.Mem })
	cand := &PlannedJob{Info: JobInfo{ID: "cand", State: batch.Pending, Mem: 5000}}
	order := append([]*PlannedJob{cand}, victims...)
	evictable := make([]int32, 0, len(victims))
	for p, pj := range order {
		if pj.Info.State == batch.Running && !pj.Suspend && !pj.Waiting {
			evictable = append(evictable, int32(p))
		}
	}
	return c, order, ls, evictable
}

// runningVictim builds an evictable running job record.
func runningVictim(id string, node cluster.NodeID, mem res.Memory, lax float64) *PlannedJob {
	pj := &PlannedJob{Info: JobInfo{
		ID: batch.JobID(id), State: batch.Running, Node: node, Mem: mem,
	}}
	pj.Node = node
	pj.lax = lax
	return pj
}

// TestEvictVictimHysteresisBoundary pins the eviction margin's exact
// boundary: at candLax == victimLax - EvictionMargin the suspension
// proceeds (the test is strictly greater-than); one ulp of laxity less
// urgency and it does not.
func TestEvictVictimHysteresisBoundary(t *testing.T) {
	const margin = 100.0
	t.Run("at-boundary-evicts", func(t *testing.T) {
		v := runningVictim("v", "a", 5000, 1000)
		c, order, ls, ev := evictFixture(t, margin, []*PlannedJob{v})
		order[0].lax = v.lax - margin // exactly at the boundary
		node := c.evictVictim(order[0], order, 0, &ev, ls)
		if node != "a" || !v.Suspend {
			t.Fatalf("boundary candidate did not evict: node=%q suspend=%v", node, v.Suspend)
		}
		if len(ev) != 0 {
			t.Errorf("suspended victim still listed evictable: %v", ev)
		}
	})
	t.Run("past-boundary-stops", func(t *testing.T) {
		v := runningVictim("v", "a", 5000, 1000)
		c, order, ls, ev := evictFixture(t, margin, []*PlannedJob{v})
		order[0].lax = v.lax - margin + 1e-9 // not urgent enough
		node := c.evictVictim(order[0], order, 0, &ev, ls)
		if node != "" || v.Suspend {
			t.Fatalf("insufficient urgency advantage still evicted: node=%q suspend=%v", node, v.Suspend)
		}
	})
}

// TestEvictVictimWalkOrder pins the walk semantics: victims are probed
// from the least urgent end of the priority order; memory-infeasible
// victims are skipped, and the first probe inside the hysteresis band
// ends the walk even when a more urgent victim deeper in would fit.
func TestEvictVictimWalkOrder(t *testing.T) {
	t.Run("least-urgent-first", func(t *testing.T) {
		v1 := runningVictim("v1", "a", 5000, 2000)
		v2 := runningVictim("v2", "b", 5000, 3000) // most lax, probed first
		c, order, ls, ev := evictFixture(t, 0, []*PlannedJob{v1, v2})
		order[0].lax = 100
		if node := c.evictVictim(order[0], order, 0, &ev, ls); node != "b" {
			t.Fatalf("evicted from %q, want b (least urgent victim)", node)
		}
		if v1.Suspend || !v2.Suspend {
			t.Errorf("suspend flags: v1=%v v2=%v, want only v2", v1.Suspend, v2.Suspend)
		}
	})
	t.Run("infeasible-victim-skipped", func(t *testing.T) {
		v1 := runningVictim("v1", "a", 5000, 2000)
		v2 := runningVictim("v2", "b", 1000, 3000) // freeing 1 GB is not enough
		c, order, ls, ev := evictFixture(t, 0, []*PlannedJob{v1, v2})
		order[0].lax = 100
		if node := c.evictVictim(order[0], order, 0, &ev, ls); node != "a" {
			t.Fatalf("evicted from %q, want a (v2 cannot make room)", node)
		}
	})
	t.Run("cutoff-stops-before-feasible-urgent-victim", func(t *testing.T) {
		v1 := runningVictim("v1", "a", 5000, 2000) // would fit, but walk never reaches it
		v2 := runningVictim("v2", "b", 5000, 3000)
		c, order, ls, ev := evictFixture(t, 0, []*PlannedJob{v1, v2})
		order[0].lax = 3500 // laxer than v2: stop at the first probe
		if node := c.evictVictim(order[0], order, 0, &ev, ls); node != "" {
			t.Fatalf("evicted from %q, want no eviction", node)
		}
	})
	t.Run("confirmed-positions-not-probed", func(t *testing.T) {
		// Victims at or before idx were already confirmed by the main
		// loop; the walk must ignore them.
		v1 := runningVictim("v1", "a", 5000, 2000)
		v2 := runningVictim("v2", "b", 5000, 3000)
		c, order, ls, ev := evictFixture(t, 0, []*PlannedJob{v1, v2})
		order[0].lax = 100
		if node := c.evictVictim(order[0], order, 2, &ev, ls); node != "" {
			t.Fatalf("evicted from %q, want none (all victims confirmed)", node)
		}
	})
}

// refJobPlacement is the pre-index job-placement phase, kept verbatim
// as the reference the indexed phase is differenced against: linear
// pickNodeScan per job and the full priority-tail walk per eviction.
func refJobPlacement(c *PlacementController, ctx *planContext) {
	st, ledgers := ctx.st, ctx.ledgers
	nodeOrder := ledgers.Order()
	ctx.order = append(ctx.order[:0], ctx.planned...)
	order := ctx.order
	sort.SliceStable(order, func(i, j int) bool { return jobLess(order[i], order[j]) })

	refEvict := func(pj *PlannedJob, rest []*PlannedJob) cluster.NodeID {
		candLax := pj.Info.Laxity(st.Now)
		for i := len(rest) - 1; i >= 0; i-- {
			victim := rest[i]
			if victim.Info.State != batch.Running || victim.Suspend || victim.Waiting {
				continue
			}
			if candLax > victim.Info.Laxity(st.Now)-c.cfg.EvictionMargin {
				return ""
			}
			l, _ := ledgers.Get(victim.Node)
			if l.FreeMem()+victim.Info.Mem < pj.Info.Mem {
				continue
			}
			victim.Suspend = true
			l.Release(victim.Info)
			return victim.Node
		}
		return ""
	}

	for idx, pj := range order {
		switch {
		case pj.Suspend, pj.Waiting:
			continue
		case pj.Info.State == batch.Running && (c.cfg.ChurnAware || pj.Info.Migrating):
			l, _ := ledgers.Get(pj.Node)
			l.AppendJob(pj)
		case pj.Info.State == batch.Running:
			src, _ := ledgers.Get(pj.Node)
			src.Release(pj.Info)
			node := pickNodeScan(pj, ledgers, nodeOrder)
			if node == "" || node == pj.Info.Node {
				node = pj.Info.Node
			} else {
				pj.Migrate = true
			}
			pj.Node = node
			l, _ := ledgers.Get(node)
			l.AddJob(pj)
		default:
			node := pickNodeScan(pj, ledgers, nodeOrder)
			if node == "" {
				node = refEvict(pj, order[idx+1:])
			}
			if node == "" {
				pj.Waiting = true
				continue
			}
			l, _ := ledgers.Get(node)
			l.AddJob(pj)
			pj.Node = node
			pj.PlacedNew = true
		}
	}
}

// TestPhaseJobPlacementMatchesScanReference replays randomized
// placement phases against the scan-based reference implementation of
// the same loop and requires identical per-record outcomes and books —
// the index-equivalence proof at phase granularity.
func TestPhaseJobPlacementMatchesScanReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		st := randomPlannerState(rng)
		cfg := DefaultConfig()
		cfg.ChurnAware = rng.Intn(4) > 0 // exercise the oblivious re-pick too
		cfg.EvictionMargin = float64(rng.Intn(3)) * 400
		run := func(phase func(*PlacementController, *planContext)) *planContext {
			c := New(cfg)
			ctx := newPlanContext(st)
			c.phaseTargets(ctx)
			c.phaseWebPlacement(ctx)
			phase(c, ctx)
			return ctx
		}
		got := run(func(c *PlacementController, ctx *planContext) { c.phaseJobPlacement(ctx) })
		want := run(refJobPlacement)

		for i := range want.planned {
			w, g := want.planned[i], got.planned[i]
			if w.Node != g.Node || w.Suspend != g.Suspend || w.Waiting != g.Waiting ||
				w.PlacedNew != g.PlacedNew || w.Migrate != g.Migrate {
				t.Fatalf("trial %d job %s: indexed {node %q s%v w%v p%v m%v} vs reference {node %q s%v w%v p%v m%v}",
					trial, w.Info.ID,
					g.Node, g.Suspend, g.Waiting, g.PlacedNew, g.Migrate,
					w.Node, w.Suspend, w.Waiting, w.PlacedNew, w.Migrate)
			}
		}
		want.ledgers.Each(func(wl *Ledger) {
			gl, _ := got.ledgers.Get(wl.Info.ID)
			if wl.MemUsed != gl.MemUsed || wl.JobCount != gl.JobCount || len(wl.Jobs) != len(gl.Jobs) {
				t.Fatalf("trial %d node %s: indexed books (mem %v jobs %d/%d) diverge from reference (mem %v jobs %d/%d)",
					trial, wl.Info.ID,
					gl.MemUsed, gl.JobCount, len(gl.Jobs),
					wl.MemUsed, wl.JobCount, len(wl.Jobs))
			}
		})
	}
}

package core

import (
	"slaplace/internal/res"
	"slaplace/internal/workload/trans"
)

// phaseShares divides each node's CPU between its reserved web share
// and its planned jobs (waterfill up to each job's cap), then feeds
// any surplus back to the web instances.
func (c *PlacementController) phaseShares(ctx *planContext) {
	ledgers := ctx.ledgers
	sc := ctx.ensureScratch()
	// Track each app's planned total so surplus feeding never pushes an
	// app beyond its maximum useful demand (extra CPU there is wasted).
	appAlloc := make(map[trans.AppID]res.CPU)
	ledgers.Each(func(l *Ledger) {
		for id, s := range l.WebApps {
			appAlloc[id] += s
		}
	})
	ledgers.Each(func(l *Ledger) {
		available := l.FreeCPU()
		if available < 0 {
			available = 0
		}
		shares := waterfillJobsInto(sc, l.Jobs, available)
		var used res.CPU
		for i, pj := range l.Jobs {
			pj.Share = shares[i]
			used += shares[i]
		}
		// Surplus back to this node's web instances (up to per-instance
		// caps and app demand): jobs all capped and CPU remains.
		surplus := available - used
		if surplus > 0 && len(l.WebApps) > 0 {
			c.spreadWebSurplus(ctx, l, surplus, appAlloc)
		}
	})
}

// waterfillJobs divides capacity among jobs, each capped at its target
// ceiling: the job's max speed (a running job may receive more than its
// hypothetical target because only placed jobs can use real CPU).
func waterfillJobs(jobs []*PlannedJob, capacity res.CPU) []res.CPU {
	return waterfillJobsInto(&planScratch{}, jobs, capacity)
}

// waterfillJobsInto is waterfillJobs backed by recycled scratch: the
// phase runs once per node per cycle, so the fresh slices would
// otherwise dominate the share phase's allocations. The returned slice
// aliases the scratch and is valid until the next call on it.
func waterfillJobsInto(sc *planScratch, jobs []*PlannedJob, capacity res.CPU) []res.CPU {
	if cap(sc.wfShares) < len(jobs) {
		sc.wfShares = make([]res.CPU, len(jobs))
		sc.wfActive = make([]int, 0, len(jobs))
		sc.wfNext = make([]int, 0, len(jobs))
	}
	shares := sc.wfShares[:len(jobs)]
	for i := range shares {
		shares[i] = 0
	}
	if len(jobs) == 0 || capacity <= 0 {
		return shares
	}
	remaining := capacity
	active := sc.wfActive[:0]
	for i := range jobs {
		active = append(active, i)
	}
	spare := sc.wfNext[:0]
	for len(active) > 0 && remaining > 1e-9 {
		per := remaining / res.CPU(len(active))
		next := spare[:0]
		var handed res.CPU
		for _, i := range active {
			speedCap := jobs[i].Info.MaxSpeed
			want := speedCap - shares[i]
			if want <= per {
				shares[i] = speedCap
				handed += want
			} else {
				shares[i] += per
				handed += per
				next = append(next, i)
			}
		}
		remaining -= handed
		if len(next) == len(active) {
			break // nobody capped; equal split is final
		}
		active, spare = next, active
	}
	return shares
}

package core

import (
	"math"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// phaseEmit settles the final accounting and translates the planning
// records into the action list: per-app web allocation totals, web
// share-change actions, job actions, and the recorder predictions.
func (c *PlacementController) phaseEmit(ctx *planContext) {
	st, plan := ctx.st, ctx.plan

	// Final web share accounting per app.
	ctx.ledgers.Each(func(l *Ledger) {
		for id, s := range l.WebApps {
			plan.AppTarget[id] += s
		}
	})
	c.emitWebShares(ctx)
	c.emitJobActions(plan, ctx.planned)

	// Predictions for the recorder.
	for i := range st.Apps {
		id := st.Apps[i].ID
		plan.AppPrediction[id] = ctx.appCurves[i].UtilityAt(plan.AppTarget[id])
	}
	for _, pj := range ctx.planned {
		plan.JobTarget += pj.Share
	}
}

// emitWebShares emits SetInstanceShare for kept instances whose planned
// share moved beyond tolerance, and sets shares on newly added ones by
// rewriting their AddInstance actions.
func (c *PlacementController) emitWebShares(ctx *planContext) {
	st, plan := ctx.st, ctx.plan
	// Index planned shares: app -> node -> share.
	plannedShare := make(map[trans.AppID]map[cluster.NodeID]res.CPU)
	ctx.ledgers.Each(func(l *Ledger) {
		for id, s := range l.WebApps {
			if plannedShare[id] == nil {
				plannedShare[id] = make(map[cluster.NodeID]res.CPU)
			}
			plannedShare[id][l.Info.ID] = s
		}
	})
	// Rewrite AddInstance actions with final shares.
	for i, a := range plan.Actions {
		if add, ok := a.(AddInstance); ok {
			add.Share = plannedShare[add.App][add.Node]
			plan.Actions[i] = add
		}
	}
	// Share changes for kept instances.
	for ai := range st.Apps {
		app := &st.Apps[ai]
		nodes := app.InstanceNodes()
		for _, n := range nodes {
			target, ok := plannedShare[app.ID][n]
			if !ok {
				continue // removed this cycle
			}
			cur := app.Instances[n]
			tol := res.CPU(c.cfg.ShareTolerance) * app.MaxPerInstance
			if res.CPU(math.Abs(float64(target-cur))) > tol {
				plan.Actions = append(plan.Actions, SetInstanceShare{App: app.ID, Node: n, Share: target})
			}
		}
	}
}

// emitJobActions translates planning records into the action list.
func (c *PlacementController) emitJobActions(plan *Plan, planned []*PlannedJob) {
	// Suspends first: the executor frees memory before filling it.
	for _, pj := range planned {
		if pj.Suspend {
			plan.Actions = append(plan.Actions, SuspendJob{Job: pj.Info.ID})
		}
	}
	for _, pj := range planned {
		switch {
		case pj.Suspend, pj.Waiting:
			// No placement this cycle.
		case pj.PlacedNew && pj.Info.State == batch.Pending:
			plan.Actions = append(plan.Actions, StartJob{Job: pj.Info.ID, Node: pj.Node, Share: pj.Share})
		case pj.PlacedNew && pj.Info.State == batch.Suspended:
			plan.Actions = append(plan.Actions, ResumeJob{Job: pj.Info.ID, Node: pj.Node, Share: pj.Share})
		case pj.Migrate:
			plan.Actions = append(plan.Actions, MigrateJob{Job: pj.Info.ID, Dst: pj.Node, Share: pj.Share})
		case pj.Info.State == batch.Running:
			tol := res.CPU(c.cfg.ShareTolerance) * pj.Info.MaxSpeed
			if res.CPU(math.Abs(float64(pj.Share-pj.Info.Share))) > tol {
				plan.Actions = append(plan.Actions, SetJobShare{Job: pj.Info.ID, Share: pj.Share})
			}
		}
	}
}

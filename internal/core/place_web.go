package core

import (
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/trans"
)

// webInst ranks one current instance for the keep decision.
type webInst struct {
	node  cluster.NodeID
	share res.CPU
}

// phaseWebPlacement decides instance presence and the reserved web
// share per node, emitting Add/Remove actions (their final shares are
// settled by the emit phase). Candidate nodes for new instances come
// from the webPickIndex (index.go) — a free-memory-ordered heap
// maintained across the whole phase — instead of rebuilding and
// re-sorting a candidate slice per application.
func (c *PlacementController) phaseWebPlacement(ctx *planContext) {
	st, plan, ledgers := ctx.st, ctx.plan, ctx.ledgers
	nodeCount := len(ledgers.Order())
	sc := ctx.ensureScratch()
	cands := &sc.webIdx
	cands.build(ledgers)
	defer cands.detach(ledgers)
	if sc.hasInst == nil {
		sc.hasInst = make(map[cluster.NodeID]bool)
	}

	for ai := range st.Apps {
		app := &st.Apps[ai]
		target := ctx.appTarget[app.ID]

		// Desired instance count (shared with the webClean check in
		// incremental.go).
		needed := neededInstances(app, target, nodeCount)

		// Keep current instances, highest-share first.
		current := sc.webCur[:0]
		if cap(current) < len(app.Instances) {
			current = make([]webInst, 0, len(app.Instances))
		}
		for n, s := range app.Instances {
			if _, ok := ledgers.Get(n); !ok {
				continue // node offline; instance is already gone
			}
			current = append(current, webInst{n, s})
		}
		sc.webCur = current
		sort.Slice(current, func(i, j int) bool {
			if current[i].share != current[j].share {
				return current[i].share > current[j].share
			}
			return current[i].node < current[j].node
		})

		kept := sc.webKept[:0]
		if cap(kept) < needed {
			kept = make([]cluster.NodeID, 0, needed)
		}
		for _, in := range current {
			if len(kept) < needed {
				kept = append(kept, in.node)
			} else {
				plan.Actions = append(plan.Actions, RemoveInstance{App: app.ID, Node: in.node})
			}
		}
		// Account kept instances' memory (they are resident already, so
		// this mirrors reality rather than reserving anew — the ledger
		// starts empty for web, unlike for running jobs, so add it).
		for _, n := range kept {
			l, _ := ledgers.Get(n)
			l.BookMem(app.InstanceMem)
		}
		// Add instances on the emptiest feasible nodes: pop candidates
		// best-first, skipping nodes that already host an instance, and
		// stop at the first infeasible top (it is the free-memory
		// maximum, so nothing below it fits either).
		if len(kept) < needed {
			clear(sc.hasInst)
			for _, n := range kept {
				sc.hasInst[n] = true
			}
			popped := sc.webPopped[:0]
			for len(kept) < needed {
				top := cands.peek()
				if top == nil || top.FreeMem() < app.InstanceMem {
					break
				}
				cands.popTop()
				popped = append(popped, top)
				if sc.hasInst[top.Info.ID] {
					continue
				}
				kept = append(kept, top.Info.ID)
				top.BookMem(app.InstanceMem)
				plan.Actions = append(plan.Actions, AddInstance{App: app.ID, Node: top.Info.ID})
			}
			for _, l := range popped {
				cands.push(l)
			}
			sc.webPopped = popped[:0]
		}
		sc.webKept = kept
		if len(kept) == 0 {
			plan.AppTarget[app.ID] = 0
			continue
		}
		// Equal split of the target, capped per instance.
		per := res.Min(target/res.CPU(len(kept)), app.MaxPerInstance)
		for _, n := range kept {
			l, _ := ledgers.Get(n)
			share := res.Min(per, l.Info.CPU)
			l.WebShare += share
			l.WebApps[app.ID] += share
		}
	}
}

// spreadWebSurplus gives a node's leftover CPU to its web instances,
// proportionally to their planned shares, capped per instance and by
// each app's remaining useful demand.
func (c *PlacementController) spreadWebSurplus(ctx *planContext, l *Ledger, surplus res.CPU, appAlloc map[trans.AppID]res.CPU) {
	st, plan := ctx.st, ctx.plan
	// Deterministic app order (recycled scratch: one call per node).
	sc := ctx.ensureScratch()
	ids := sc.webIDs[:0]
	for id := range l.WebApps {
		ids = append(ids, id)
	}
	sc.webIDs = ids
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var totalShare res.CPU
	for _, id := range ids {
		totalShare += l.WebApps[id]
	}
	for _, id := range ids {
		if surplus <= 0 {
			break
		}
		var instCap res.CPU
		if app := st.AppByID(id); app != nil {
			instCap = app.MaxPerInstance
		}
		cur := l.WebApps[id]
		frac := res.CPU(1)
		if totalShare > 0 {
			frac = cur / totalShare
		} else {
			frac = res.CPU(1) / res.CPU(len(ids))
		}
		grant := res.Min(surplus*frac, instCap-cur)
		if gap := plan.AppDemand[id] - appAlloc[id]; grant > gap {
			grant = gap
		}
		if grant < 0 {
			grant = 0
		}
		l.WebApps[id] = cur + grant
		l.WebShare += grant
		appAlloc[id] += grant
		surplus -= grant
	}
}

package core

import (
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/trans"
)

// phaseWebPlacement decides instance presence and the reserved web
// share per node, emitting Add/Remove actions (their final shares are
// settled by the emit phase).
func (c *PlacementController) phaseWebPlacement(ctx *planContext) {
	st, plan, ledgers := ctx.st, ctx.plan, ctx.ledgers
	nodeOrder := ledgers.Order()
	for ai := range st.Apps {
		app := &st.Apps[ai]
		target := ctx.appTarget[app.ID]

		// Desired instance count (shared with the webClean check in
		// incremental.go).
		needed := neededInstances(app, target, len(nodeOrder))

		// Keep current instances, highest-share first.
		type inst struct {
			node  cluster.NodeID
			share res.CPU
		}
		var current []inst
		for n, s := range app.Instances {
			if _, ok := ledgers.Get(n); !ok {
				continue // node offline; instance is already gone
			}
			current = append(current, inst{n, s})
		}
		sort.Slice(current, func(i, j int) bool {
			if current[i].share != current[j].share {
				return current[i].share > current[j].share
			}
			return current[i].node < current[j].node
		})

		kept := make([]cluster.NodeID, 0, needed)
		for _, in := range current {
			if len(kept) < needed {
				kept = append(kept, in.node)
			} else {
				plan.Actions = append(plan.Actions, RemoveInstance{App: app.ID, Node: in.node})
			}
		}
		// Account kept instances' memory (they are resident already, so
		// this mirrors reality rather than reserving anew — the ledger
		// starts empty for web, unlike for running jobs, so add it).
		for _, n := range kept {
			l, _ := ledgers.Get(n)
			l.MemUsed += app.InstanceMem
		}
		// Add instances on the emptiest feasible nodes.
		if len(kept) < needed {
			hasInst := make(map[cluster.NodeID]bool, len(kept))
			for _, n := range kept {
				hasInst[n] = true
			}
			cands := make([]cluster.NodeID, 0, len(nodeOrder))
			for _, n := range nodeOrder {
				l, _ := ledgers.Get(n)
				if !hasInst[n] && l.FreeMem() >= app.InstanceMem {
					cands = append(cands, n)
				}
			}
			sort.SliceStable(cands, func(i, j int) bool {
				li, _ := ledgers.Get(cands[i])
				lj, _ := ledgers.Get(cands[j])
				if li.FreeMem() != lj.FreeMem() {
					return li.FreeMem() > lj.FreeMem()
				}
				return cands[i] < cands[j]
			})
			for _, n := range cands {
				if len(kept) >= needed {
					break
				}
				kept = append(kept, n)
				l, _ := ledgers.Get(n)
				l.MemUsed += app.InstanceMem
				plan.Actions = append(plan.Actions, AddInstance{App: app.ID, Node: n})
			}
		}
		if len(kept) == 0 {
			plan.AppTarget[app.ID] = 0
			continue
		}
		// Equal split of the target, capped per instance.
		per := res.Min(target/res.CPU(len(kept)), app.MaxPerInstance)
		for _, n := range kept {
			l, _ := ledgers.Get(n)
			share := res.Min(per, l.Info.CPU)
			l.WebShare += share
			l.WebApps[app.ID] += share
		}
	}
}

// spreadWebSurplus gives a node's leftover CPU to its web instances,
// proportionally to their planned shares, capped per instance and by
// each app's remaining useful demand.
func (c *PlacementController) spreadWebSurplus(ctx *planContext, l *Ledger, surplus res.CPU, appAlloc map[trans.AppID]res.CPU) {
	st, plan := ctx.st, ctx.plan
	// Deterministic app order.
	ids := make([]trans.AppID, 0, len(l.WebApps))
	for id := range l.WebApps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var totalShare res.CPU
	for _, id := range ids {
		totalShare += l.WebApps[id]
	}
	for _, id := range ids {
		if surplus <= 0 {
			break
		}
		var instCap res.CPU
		for ai := range st.Apps {
			if st.Apps[ai].ID == id {
				instCap = st.Apps[ai].MaxPerInstance
				break
			}
		}
		cur := l.WebApps[id]
		frac := res.CPU(1)
		if totalShare > 0 {
			frac = cur / totalShare
		} else {
			frac = res.CPU(1) / res.CPU(len(ids))
		}
		grant := res.Min(surplus*frac, instCap-cur)
		if gap := plan.AppDemand[id] - appAlloc[id]; grant > gap {
			grant = gap
		}
		if grant < 0 {
			grant = 0
		}
		l.WebApps[id] = cur + grant
		l.WebShare += grant
		appAlloc[id] += grant
		surplus -= grant
	}
}

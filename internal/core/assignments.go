package core

import (
	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// This file exposes what a plan *means*: the placement that results
// from enacting its actions on the snapshot it was planned from. The
// wire layer (package api) serializes these resulting assignments so
// remote callers can diff consecutive plans instead of replaying
// action lists against their own state machines.

// JobAssignment is one job's post-plan placement. A job the plan
// leaves unplaced keeps its snapshot state (Pending or Suspended) with
// no node and no share.
type JobAssignment struct {
	State batch.State
	Node  cluster.NodeID
	Share res.CPU
}

// JobAssignments returns every snapshot job's assignment after the
// plan's actions are enacted: running jobs keep their placement unless
// suspended, migrated or re-shared; started and resumed jobs become
// running at their action's node and share. st must be the snapshot
// the plan was produced from.
func (p *Plan) JobAssignments(st *State) map[batch.JobID]JobAssignment {
	out := make(map[batch.JobID]JobAssignment, len(st.Jobs))
	for i := range st.Jobs {
		j := &st.Jobs[i]
		a := JobAssignment{State: j.State}
		if j.State == batch.Running {
			a.Node, a.Share = j.Node, j.Share
		}
		out[j.ID] = a
	}
	for _, act := range p.Actions {
		switch a := act.(type) {
		case StartJob:
			out[a.Job] = JobAssignment{State: batch.Running, Node: a.Node, Share: a.Share}
		case ResumeJob:
			out[a.Job] = JobAssignment{State: batch.Running, Node: a.Node, Share: a.Share}
		case SuspendJob:
			out[a.Job] = JobAssignment{State: batch.Suspended}
		case MigrateJob:
			out[a.Job] = JobAssignment{State: batch.Running, Node: a.Dst, Share: a.Share}
		case SetJobShare:
			cur := out[a.Job]
			cur.Share = a.Share
			out[a.Job] = cur
		}
	}
	return out
}

// AppAssignments returns every snapshot application's post-plan
// instance set (node → share) after the plan's instance actions are
// enacted. st must be the snapshot the plan was produced from.
func (p *Plan) AppAssignments(st *State) map[trans.AppID]map[cluster.NodeID]res.CPU {
	out := make(map[trans.AppID]map[cluster.NodeID]res.CPU, len(st.Apps))
	for i := range st.Apps {
		a := &st.Apps[i]
		inst := make(map[cluster.NodeID]res.CPU, len(a.Instances))
		for n, s := range a.Instances {
			inst[n] = s
		}
		out[a.ID] = inst
	}
	for _, act := range p.Actions {
		switch a := act.(type) {
		case AddInstance:
			if out[a.App] == nil {
				out[a.App] = make(map[cluster.NodeID]res.CPU)
			}
			out[a.App][a.Node] = a.Share
		case RemoveInstance:
			delete(out[a.App], a.Node)
		case SetInstanceShare:
			if out[a.App] != nil {
				out[a.App][a.Node] = a.Share
			}
		}
	}
	return out
}

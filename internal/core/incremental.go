package core

import (
	"math"
	"reflect"
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// Incremental re-planning.
//
// The paper's control loop re-solves placement every cycle, but its
// algorithm is deliberately incremental: it starts from the current
// placement and minimizes churn. This file exploits that structure so
// steady-state cycles cost O(apps + jobs + nodes) instead of the full
// placement scan, while the produced Plan stays byte-identical to the
// from-scratch planner — equivalence is *proved* cheaply per cycle and
// the controller falls back to the full pipeline whenever the proof
// fails.
//
// Three reuse tiers, checked in order:
//
//	replay       the snapshot is exactly the previous one (controllers
//	             must be deterministic, so the cached plan IS the
//	             answer); common when a caller re-plans without any
//	             state drift.
//	carry-over   the demand delta moved the continuous targets but the
//	             discrete skeleton provably cannot change: every web
//	             application keeps exactly its current instances
//	             (webClean) and no pending/suspended job could be
//	             placed on any node or behind any single eviction
//	             (jobsSteady). Then web-placement and job-placement
//	             degenerate to carrying the previous placement over
//	             wholesale; only targets, shares, rebalance and emit
//	             run. The cached priority order is revalidated in O(n)
//	             instead of re-sorting.
//	full         anything else: the normal from-scratch pipeline.
//
// Soundness of carry-over: with ChurnAware set, the from-scratch
// job-placement phase keeps every running job in place and the ledger
// memory state is then static through the whole phase when no job can
// be placed (jobsSteady checks exactly that, conservatively covering
// the eviction path by memory feasibility alone, which subsumes the
// urgency test). Likewise webClean implies the from-scratch
// web-placement phase would keep exactly the current instance set and
// emit no Add/Remove actions. Everything downstream (shares, rebalance,
// emit, diagnostics) is recomputed fresh from the same books, so the
// bytes cannot differ.

// PlanMode says how a plan was produced.
type PlanMode int

// Plan production modes, in increasing order of reuse.
const (
	// PlanFull is a from-scratch run of every pipeline phase.
	PlanFull PlanMode = iota
	// PlanIncremental carried the previous placement over wholesale and
	// re-ran only the targets, shares, rebalance and emit phases.
	PlanIncremental
	// PlanReplayed returned a copy of the cached plan for a snapshot
	// identical to the previous one.
	PlanReplayed
)

// String renders the mode for logs and series labels.
func (m PlanMode) String() string {
	switch m {
	case PlanFull:
		return "full"
	case PlanIncremental:
		return "incremental"
	case PlanReplayed:
		return "replayed"
	default:
		return "unknown"
	}
}

// PlanStats reports how the controller's plans have been produced and
// the demand drift the latest cycle observed.
type PlanStats struct {
	// Full, Incremental and Replayed count plans per PlanMode.
	Full, Incremental, Replayed int
	// LastMode is the mode of the most recent plan.
	LastMode PlanMode
	// LastDemandDelta is the aggregate CPU-demand drift the targets
	// phase measured against the previous cycle: Σ per application
	// |ΔAppDemand| plus |ΔJobDemand|. Zero when there was no previous
	// cycle to compare against.
	LastDemandDelta res.CPU
}

// PlanStatsProvider is implemented by controllers that can report plan
// reuse statistics; the control loop records them as series.
type PlanStatsProvider interface {
	PlanStats() PlanStats
}

// planMemo caches the previous control cycle: the exact snapshot it
// planned, the plan it produced, and the job priority order it used.
type planMemo struct {
	valid bool
	now   float64
	nodes []NodeInfo
	jobs  []JobInfo
	apps  []AppInfo // Instances maps are memo-owned deep copies
	plan  *Plan
	order []int32 // job priority order as indices into jobs
}

// storeMemo snapshots the finished pass. The state is deep-copied into
// memo-owned buffers: callers may mutate their State between cycles.
func (c *PlacementController) storeMemo(st *State, ctx *planContext) {
	m := c.memo
	if m == nil {
		m = &planMemo{}
		c.memo = m
	}
	m.now = st.Now
	m.nodes = append(m.nodes[:0], st.Nodes...)
	m.jobs = append(m.jobs[:0], st.Jobs...)
	m.apps = m.apps[:0]
	for i := range st.Apps {
		a := st.Apps[i]
		inst := make(map[cluster.NodeID]res.CPU, len(a.Instances))
		for n, s := range a.Instances {
			inst[n] = s
		}
		a.Instances = inst
		m.apps = append(m.apps, a)
	}
	m.plan = clonePlan(ctx.plan)
	m.order = m.order[:0]
	for _, pj := range ctx.order {
		m.order = append(m.order, pj.idx)
	}
	m.valid = true
}

// replayMemo returns a copy of the cached plan when the snapshot is
// identical to the previous one, nil otherwise. Determinism makes this
// sound: identical states must yield identical plans.
func (c *PlacementController) replayMemo(st *State) *Plan {
	m := c.memo
	if m == nil || !m.valid || st.Now != m.now {
		return nil
	}
	if !nodeInfosEqual(m.nodes, st.Nodes) {
		return nil
	}
	if len(st.Jobs) != len(m.jobs) || len(st.Apps) != len(m.apps) {
		return nil
	}
	for i := range st.Jobs {
		if !jobInfoEqual(&st.Jobs[i], &m.jobs[i]) {
			return nil
		}
	}
	for i := range st.Apps {
		if !appInfoEqual(&st.Apps[i], &m.apps[i]) {
			return nil
		}
	}
	return clonePlan(m.plan)
}

// jobInfoEqual compares every field that can influence a plan.
func jobInfoEqual(a, b *JobInfo) bool {
	return a.ID == b.ID && a.Class == b.Class && a.State == b.State &&
		a.Node == b.Node && a.Share == b.Share && a.Migrating == b.Migrating &&
		a.Remaining == b.Remaining && a.MaxSpeed == b.MaxSpeed &&
		a.Mem == b.Mem && a.Goal == b.Goal && a.Submitted == b.Submitted &&
		ifaceEqual(a.Fn, b.Fn)
}

// appInfoEqual compares every field that can influence a plan.
func appInfoEqual(a, b *AppInfo) bool {
	if a.ID != b.ID || a.Lambda != b.Lambda || a.RTGoal != b.RTGoal ||
		a.InstanceMem != b.InstanceMem || a.MaxPerInstance != b.MaxPerInstance ||
		a.MinInstances != b.MinInstances || a.MaxInstances != b.MaxInstances ||
		a.MeasuredRT != b.MeasuredRT ||
		!ifaceEqual(a.Model, b.Model) || !ifaceEqual(a.Fn, b.Fn) {
		return false
	}
	if len(a.Instances) != len(b.Instances) {
		return false
	}
	for n, s := range a.Instances {
		if bs, ok := b.Instances[n]; !ok || bs != s {
			return false
		}
	}
	return true
}

// ifaceEqual compares two interface values without panicking on
// uncomparable dynamic types (those simply compare unequal, forcing the
// conservative path).
func ifaceEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb || !ta.Comparable() {
		return false
	}
	return a == b
}

// clonePlan deep-copies a plan so cached and returned plans never share
// mutable structure with each other or with the planning pass.
func clonePlan(p *Plan) *Plan {
	cp := *p
	cp.Actions = append([]Action(nil), p.Actions...)
	cp.ClassHypoUtility = cloneFloatMap(p.ClassHypoUtility)
	cp.AppPrediction = cloneFloatMap(p.AppPrediction)
	cp.AppDemand = cloneCPUMap(p.AppDemand)
	cp.AppTarget = cloneCPUMap(p.AppTarget)
	return &cp
}

func cloneFloatMap[K comparable](m map[K]float64) map[K]float64 {
	if m == nil {
		return nil
	}
	out := make(map[K]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneCPUMap[K comparable](m map[K]res.CPU) map[K]res.CPU {
	if m == nil {
		return nil
	}
	out := make(map[K]res.CPU, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// demandDelta measures, deterministically (state order, not map order),
// the aggregate CPU-demand drift between this pass and the memoized
// previous cycle — the per-application demand delta the incremental
// design steers by. Returns 0 when there is no previous cycle.
func (c *PlacementController) demandDelta(ctx *planContext) res.CPU {
	m := c.memo
	if m == nil || !m.valid || m.plan == nil {
		return 0
	}
	var d res.CPU
	seen := 0
	for i := range ctx.st.Apps {
		id := ctx.st.Apps[i].ID
		prev, ok := m.plan.AppDemand[id]
		if ok {
			seen++
		}
		d += res.CPU(math.Abs(float64(ctx.plan.AppDemand[id] - prev)))
	}
	if seen != len(m.plan.AppDemand) {
		// Applications disappeared; count their whole demand as drift.
		for i := range m.apps {
			id := m.apps[i].ID
			if _, ok := ctx.plan.AppDemand[id]; !ok {
				d += res.CPU(math.Abs(float64(m.plan.AppDemand[id])))
			}
		}
	}
	d += res.CPU(math.Abs(float64(ctx.plan.JobDemand - m.plan.JobDemand)))
	return d
}

// webClean reports whether the web-placement phase would provably keep
// exactly the current instance set for every application: each app's
// needed-instance count equals its live instance count and no instance
// sits on an unknown node. Then the phase emits no Add/Remove actions
// and its memory/share bookkeeping reduces to fastWebPlacement.
func (c *PlacementController) webClean(ctx *planContext) bool {
	st := ctx.st
	nodeCount := len(ctx.ledgers.Order())
	for ai := range st.Apps {
		app := &st.Apps[ai]
		live := 0
		for n := range app.Instances {
			if _, ok := ctx.ledgers.Get(n); !ok {
				return false
			}
			live++
		}
		if neededInstances(app, ctx.appTarget[app.ID], nodeCount) != live {
			return false
		}
	}
	return true
}

// fastWebPlacement replays the web-placement phase for a webClean pass:
// every application keeps exactly its current instances, so only the
// memory accounting and the share division run. Byte-identical to
// phaseWebPlacement under the webClean precondition.
func (c *PlacementController) fastWebPlacement(ctx *planContext) {
	st, plan, ledgers := ctx.st, ctx.plan, ctx.ledgers
	for ai := range st.Apps {
		app := &st.Apps[ai]
		kept := app.InstanceNodes()
		if len(kept) == 0 {
			plan.AppTarget[app.ID] = 0
			continue
		}
		for _, n := range kept {
			l, _ := ledgers.Get(n)
			l.BookMem(app.InstanceMem)
		}
		per := res.Min(ctx.appTarget[app.ID]/res.CPU(len(kept)), app.MaxPerInstance)
		for _, n := range kept {
			l, _ := ledgers.Get(n)
			share := res.Min(per, l.Info.CPU)
			l.WebShare += share
			l.WebApps[app.ID] += share
		}
	}
}

// jobsSteady reports whether the job-placement phase would provably
// change nothing: every pending or suspended job can neither fit on any
// node as booked nor fit behind any single eviction. Memory feasibility
// subsumes the eviction urgency test, so this is conservative: any
// doubt forces the full phase. Must run after web memory is booked
// (the ledgers are then static through the whole phase).
func (c *PlacementController) jobsSteady(ctx *planContext) bool {
	// Largest plannable free memory on any node.
	maxFree := res.Memory(-1)
	ctx.ledgers.Each(func(l *Ledger) {
		if f := l.FreeMem(); f > maxFree {
			maxFree = f
		}
	})
	// Largest memory a single eviction could make available: the
	// victim's node free memory plus the victim's own footprint, over
	// every evictable running job.
	maxFreeable := res.Memory(-1)
	for _, pj := range ctx.planned {
		if pj.Info.State != batch.Running || pj.Waiting {
			continue
		}
		l, ok := ctx.ledgers.Get(pj.Node)
		if !ok {
			continue
		}
		if f := l.FreeMem() + pj.Info.Mem; f > maxFreeable {
			maxFreeable = f
		}
	}
	for _, pj := range ctx.planned {
		if pj.Waiting || pj.Info.State == batch.Running {
			continue
		}
		if pj.Info.Mem <= maxFree || pj.Info.Mem <= maxFreeable {
			return false
		}
	}
	return true
}

// fastJobCarryOver replays the job-placement phase for a jobsSteady
// pass: running jobs stay put (ledger append follows the priority order
// so downstream float accumulation is bit-identical to the full phase)
// and everything else keeps waiting.
func (c *PlacementController) fastJobCarryOver(ctx *planContext) {
	for _, pj := range c.orderedPlanned(ctx) {
		switch {
		case pj.Waiting:
			// Stranded on a vanished node; eviction recovery's job.
		case pj.Info.State == batch.Running:
			l, _ := ctx.ledgers.Get(pj.Node)
			l.AppendJob(pj)
		default:
			pj.Waiting = true
		}
	}
}

// orderedPlanned fills ctx.order with the planning records in priority
// order. When the memoized previous order still verifies as strictly
// sorted under the current laxities — the common steady-state case —
// the O(n log n) sort collapses to an O(n) check; the comparator is a
// total order (ID tie-break), so a verified order is THE sorted order.
func (c *PlacementController) orderedPlanned(ctx *planContext) []*PlannedJob {
	n := len(ctx.planned)
	if m := c.memo; m != nil && m.valid && len(m.order) == n && n > 0 {
		ctx.order = ctx.order[:0]
		ok := true
		for _, ix := range m.order {
			if int(ix) < 0 || int(ix) >= n {
				ok = false
				break
			}
			ctx.order = append(ctx.order, ctx.planned[ix])
		}
		for i := 0; ok && i+1 < n; i++ {
			// Strictness also rejects any non-permutation: a repeated
			// index ties with itself and fails.
			if !jobLess(ctx.order[i], ctx.order[i+1]) {
				ok = false
			}
		}
		if ok {
			return ctx.order
		}
	}
	ctx.order = append(ctx.order[:0], ctx.planned...)
	sort.SliceStable(ctx.order, func(i, j int) bool { return jobLess(ctx.order[i], ctx.order[j]) })
	return ctx.order
}

// neededInstances computes the web-placement phase's desired instance
// count for an application at the given equalized target. Shared by the
// full phase and the webClean check so the formula cannot drift.
func neededInstances(app *AppInfo, target res.CPU, nodeCount int) int {
	needed := 0
	if app.MaxPerInstance > 0 {
		needed = int(math.Ceil(float64(target) / float64(app.MaxPerInstance)))
	}
	if needed < app.MinInstances {
		needed = app.MinInstances
	}
	if needed < 1 && target > 0 {
		needed = 1
	}
	if app.MaxInstances > 0 && needed > app.MaxInstances {
		needed = app.MaxInstances
	}
	if needed > nodeCount {
		needed = nodeCount
	}
	return needed
}

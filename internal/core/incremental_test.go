package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"slaplace/internal/cluster"
	"slaplace/internal/queueing"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// mg1Model is the shared test queueing model (panics are impossible:
// the constants are valid).
var mg1Model = func() queueing.MG1PS {
	m, err := queueing.NewMG1PS(1350, 4500)
	if err != nil {
		panic(err)
	}
	return m
}()

// The incremental planner's contract: whatever the reuse tier, the plan
// is byte-identical to the from-scratch planner's. These tests compare
// an incremental controller against a fresh from-scratch controller on
// every cycle of directed and randomized state sequences.

// cloneStateDeep copies a snapshot so two controllers plan from
// unaliased inputs.
func cloneStateDeep(st *State) *State {
	cp := &State{Now: st.Now}
	cp.Nodes = append([]NodeInfo(nil), st.Nodes...)
	cp.Jobs = append([]JobInfo(nil), st.Jobs...)
	for _, a := range st.Apps {
		ac := a
		ac.Instances = make(map[cluster.NodeID]res.CPU, len(a.Instances))
		for n, s := range a.Instances {
			ac.Instances[n] = s
		}
		cp.Apps = append(cp.Apps, ac)
	}
	return cp
}

// jobMem builds a JobInfo with an explicit memory footprint.
func jobMem(id string, state batch.State, node cluster.NodeID, mem res.Memory, remaining res.Work, goal, submitted float64) JobInfo {
	return JobInfo{
		ID: batch.JobID(id), Class: "batch", State: state, Node: node,
		Remaining: remaining, MaxSpeed: 4500, Mem: mem,
		Goal: goal, Submitted: submitted,
	}
}

// steadyTestState builds a crowded snapshot on which the carry-over
// tier provably applies: every node hosts a web instance plus two
// running jobs (5 GB free), and the pending backlog needs 12 GB — more
// than any node can free even with a single eviction (5 + 5 GB).
func steadyTestState(t *testing.T, nNodes, nPending int) *State {
	t.Helper()
	st := &State{Now: 10000, Nodes: nodes(nNodes)}
	instances := map[cluster.NodeID]res.CPU{}
	for i, n := range st.Nodes {
		instances[n.ID] = res.CPU(1000 + 10*i)
		for k := 0; k < 2; k++ {
			id := fmt.Sprintf("r%03d-%d", i, k)
			st.Jobs = append(st.Jobs, jobMem(id, batch.Running, n.ID, 5000,
				res.Work(4500*50000), 80000+float64(100*i+k), float64(i)))
			st.Jobs[len(st.Jobs)-1].Share = 4500
		}
	}
	for p := 0; p < nPending; p++ {
		id := fmt.Sprintf("p%03d", p)
		st.Jobs = append(st.Jobs, jobMem(id, batch.Pending, "", 12000,
			res.Work(4500*30000), 200000+float64(37*p), 9000+float64(p)))
	}
	app := webApp(t, "web", 65, instances)
	app.MinInstances = nNodes
	st.Apps = []AppInfo{app}
	return st
}

// comparePlans fails the test unless the two plans are byte-identical.
func comparePlans(t *testing.T, label string, got, want *Plan) {
	t.Helper()
	if got.Digest() == want.Digest() {
		return
	}
	t.Errorf("%s: plan digests differ", label)
	if len(got.Actions) != len(want.Actions) {
		t.Fatalf("%s: %d actions vs %d from scratch", label, len(got.Actions), len(want.Actions))
	}
	for i := range got.Actions {
		if got.Actions[i].String() != want.Actions[i].String() {
			t.Fatalf("%s: action %d: %v vs %v", label, i, got.Actions[i], want.Actions[i])
		}
	}
}

// fromScratchPlan plans st on a fresh controller with reuse disabled —
// the reference semantics.
func fromScratchPlan(st *State) *Plan {
	cfg := DefaultConfig()
	cfg.Incremental = false
	return New(cfg).Plan(st)
}

// TestIncrementalSteadyCarryOver drives a steady crowded cluster
// through several cycles of demand drift and verifies that (a) every
// cycle takes the carry-over tier and (b) every plan matches the
// from-scratch planner byte for byte.
func TestIncrementalSteadyCarryOver(t *testing.T) {
	st := steadyTestState(t, 4, 6)
	inc := New(DefaultConfig())
	for cycle := 0; cycle < 8; cycle++ {
		got := inc.Plan(cloneStateDeep(st))
		want := fromScratchPlan(cloneStateDeep(st))
		comparePlans(t, fmt.Sprintf("cycle %d", cycle), got, want)
		if mode := inc.PlanStats().LastMode; mode != PlanIncremental {
			t.Fatalf("cycle %d: mode %v, want incremental", cycle, mode)
		}
		// Drift: time advances, running jobs progress, demand moves.
		st.Now += 600
		st.Apps[0].Lambda = 65 + float64(cycle%3)
		for i := range st.Jobs {
			if st.Jobs[i].State == batch.Running {
				st.Jobs[i].Remaining -= res.Work(4500 * 600)
			}
		}
	}
	stats := inc.PlanStats()
	if stats.Incremental != 8 || stats.Full != 0 {
		t.Errorf("stats = %+v, want 8 incremental plans", stats)
	}
	if stats.LastDemandDelta <= 0 {
		t.Errorf("demand delta %v, want > 0 after lambda drift", stats.LastDemandDelta)
	}
}

// TestReplayTierExactSnapshot re-plans an identical snapshot and
// expects the cached plan back, byte-identical.
func TestReplayTierExactSnapshot(t *testing.T) {
	st := steadyTestState(t, 3, 2)
	inc := New(DefaultConfig())
	first := inc.Plan(cloneStateDeep(st))
	second := inc.Plan(cloneStateDeep(st))
	comparePlans(t, "replay", second, first)
	stats := inc.PlanStats()
	if stats.Replayed != 1 {
		t.Errorf("replayed = %d, want 1 (stats %+v)", stats.Replayed, stats)
	}
	if stats.LastMode != PlanReplayed {
		t.Errorf("last mode %v, want replayed", stats.LastMode)
	}
	// The cached plan must not alias the returned ones.
	first.Actions = nil
	first.AppTarget["web"] = -1
	third := inc.Plan(cloneStateDeep(st))
	if len(third.Actions) != len(second.Actions) || third.AppTarget["web"] == -1 {
		t.Error("cached plan aliases a returned plan")
	}
}

// TestIncrementalFallsBackToFull checks that each steadiness condition,
// when violated, forces the full pipeline — and that the result still
// matches the from-scratch planner.
func TestIncrementalFallsBackToFull(t *testing.T) {
	cases := []struct {
		name    string
		disturb func(st *State)
	}{
		{"new-pending-job-that-fits", func(st *State) {
			st.Jobs = append(st.Jobs, jobMem("tiny", batch.Pending, "", 3000,
				res.Work(4500*1000), 30000, 9999))
		}},
		{"pending-job-now-evictable", func(st *State) {
			for i := range st.Jobs {
				if st.Jobs[i].State == batch.Pending {
					st.Jobs[i].Mem = 9000 // one eviction frees 10 GB
					return
				}
			}
		}},
		{"instance-gone", func(st *State) {
			delete(st.Apps[0].Instances, st.Nodes[0].ID)
		}},
		{"node-vanished", func(st *State) {
			st.Nodes = st.Nodes[1:]
		}},
		{"fewer-instances-than-needed", func(st *State) {
			// MinInstances still spans the cluster but only one
			// instance remains: the web skeleton is dirty.
			st.Apps[0].Instances = map[cluster.NodeID]res.CPU{st.Nodes[0].ID: 9000}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := steadyTestState(t, 4, 3)
			inc := New(DefaultConfig())
			inc.Plan(cloneStateDeep(st)) // warm: steady carry-over
			tc.disturb(st)
			st.Now += 600
			got := inc.Plan(cloneStateDeep(st))
			want := fromScratchPlan(cloneStateDeep(st))
			comparePlans(t, tc.name, got, want)
			if mode := inc.PlanStats().LastMode; mode != PlanFull {
				t.Errorf("mode %v, want full after disturbance", mode)
			}
		})
	}
}

// TestIncrementalEquivalenceRandom fuzzes whole state sequences:
// arbitrary arrivals, completions, state flips, drift and node churn,
// comparing the incremental controller against a from-scratch plan on
// every cycle. This is the standing guard on the reuse tiers' soundness
// conditions.
func TestIncrementalEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var incrementalSeen bool
	for trial := 0; trial < 25; trial++ {
		// Odd trials start steady (so the carry-over tier is fuzzed and
		// then randomly broken); even trials start fully random.
		var st *State
		if trial%2 == 1 {
			st = steadyTestState(t, 2+rng.Intn(3), 1+rng.Intn(5))
		} else {
			st = randomPlannerState(rng)
		}
		inc := New(DefaultConfig())
		for cycle := 0; cycle < 6; cycle++ {
			got := inc.Plan(cloneStateDeep(st))
			want := fromScratchPlan(cloneStateDeep(st))
			comparePlans(t, fmt.Sprintf("trial %d cycle %d", trial, cycle), got, want)
			if inc.PlanStats().LastMode == PlanIncremental {
				incrementalSeen = true
			}
			mutatePlannerState(rng, st)
		}
	}
	if !incrementalSeen {
		t.Error("no random trial exercised the carry-over tier; generator drifted")
	}
}

// TestSnapshotComparatorsCoverEveryField pins the field counts of the
// snapshot structs the replay tier compares by hand. If this fails you
// added a field to JobInfo or AppInfo: extend jobInfoEqual /
// appInfoEqual (and the fuzzer's mutatePlannerState) to cover it, then
// bump the count — otherwise replayMemo would treat snapshots differing
// only in the new field as identical and serve a stale cached plan.
func TestSnapshotComparatorsCoverEveryField(t *testing.T) {
	if got, want := reflect.TypeOf(JobInfo{}).NumField(), 12; got != want {
		t.Errorf("JobInfo has %d fields, comparator covers %d — update jobInfoEqual", got, want)
	}
	if got, want := reflect.TypeOf(AppInfo{}).NumField(), 11; got != want {
		t.Errorf("AppInfo has %d fields, comparator covers %d — update appInfoEqual", got, want)
	}
}

// TestEvictVictimSkipsStrandedJob is a regression test: a running job
// whose node vanished from the snapshot used to be walked as an
// eviction victim, dereferencing a nil ledger. The stranded job must be
// skipped and a real victim on a live node chosen instead.
func TestEvictVictimSkipsStrandedJob(t *testing.T) {
	st := &State{Now: 1000, Nodes: nodes(1)}
	// Least urgent by far, on a node outside the snapshot.
	st.Jobs = append(st.Jobs, jobMem("stranded", batch.Running, "zz", 5000,
		res.Work(4500*1000), 900000, 0))
	// Three residents fill the live node (15 GB of 16 GB).
	for i := 0; i < 3; i++ {
		st.Jobs = append(st.Jobs, jobMem(fmt.Sprintf("r%d", i), batch.Running, "a", 5000,
			res.Work(4500*1000), 50000+float64(i*1000), float64(i)))
	}
	// An urgent pending job that can only fit behind an eviction.
	st.Jobs = append(st.Jobs, jobMem("urgent", batch.Pending, "", 5000,
		res.Work(4500*1000), 2200, 500))

	plan := New(DefaultConfig()).Plan(st) // must not panic
	starts, _, suspends, _, _, _, _, _ := plan.CountActions()
	if suspends != 1 || starts != 1 {
		t.Errorf("wanted one suspend + one start, got %d/%d (%v)", suspends, starts, plan.Actions)
	}
	for _, a := range plan.Actions {
		if s, ok := a.(SuspendJob); ok && s.Job == "stranded" {
			t.Error("stranded job chosen as eviction victim")
		}
	}
}

// randomPlannerState builds an arbitrary-but-valid snapshot.
func randomPlannerState(rng *rand.Rand) *State {
	nNodes := 2 + rng.Intn(4)
	st := &State{Now: 5000 + float64(rng.Intn(1000)), Nodes: nodes(nNodes)}
	mems := []res.Memory{3000, 5000, 11000, 12000, 15000}
	nJobs := 4 + rng.Intn(12)
	for i := 0; i < nJobs; i++ {
		state := batch.Pending
		var node cluster.NodeID
		switch rng.Intn(3) {
		case 0:
			state = batch.Running
			node = st.Nodes[rng.Intn(nNodes)].ID
		case 1:
			state = batch.Suspended
		}
		j := jobMem(fmt.Sprintf("j%02d", i), state, node,
			mems[rng.Intn(len(mems))],
			res.Work(4500*float64(1000+rng.Intn(40000))),
			st.Now+float64(rng.Intn(60000))-5000,
			float64(rng.Intn(5000)))
		if state == batch.Running {
			j.Share = res.CPU(rng.Intn(4500) + 1)
		}
		st.Jobs = append(st.Jobs, j)
	}
	nApps := rng.Intn(3)
	for a := 0; a < nApps; a++ {
		instances := map[cluster.NodeID]res.CPU{}
		for _, n := range st.Nodes {
			if rng.Intn(2) == 0 {
				instances[n.ID] = res.CPU(rng.Intn(9000))
			}
		}
		app := AppInfo{
			ID: trans.AppID(fmt.Sprintf("app%d", a)), Lambda: 10 + float64(rng.Intn(80)),
			RTGoal: 3.0, Model: mg1Model, InstanceMem: 1000,
			MaxPerInstance: 18000, MinInstances: rng.Intn(nNodes + 1),
			Instances: instances,
		}
		st.Apps = append(st.Apps, app)
	}
	return st
}

// mutatePlannerState applies one cycle's worth of random world drift.
func mutatePlannerState(rng *rand.Rand, st *State) {
	st.Now += 600
	for i := range st.Jobs {
		j := &st.Jobs[i]
		if j.State == batch.Running {
			burn := res.Work(float64(j.Share) * 600)
			if burn >= j.Remaining {
				burn = j.Remaining / 2
			}
			j.Remaining -= burn
			if j.Remaining <= 0 {
				j.Remaining = 1
			}
		}
	}
	for k := 0; k < 1+rng.Intn(3); k++ {
		switch rng.Intn(8) {
		case 0: // arrival
			st.Jobs = append(st.Jobs, jobMem(fmt.Sprintf("n%04d", rng.Intn(10000)),
				batch.Pending, "", 5000, res.Work(4500*float64(1000+rng.Intn(20000))),
				st.Now+float64(rng.Intn(40000)), st.Now))
		case 1: // completion
			if len(st.Jobs) > 1 {
				i := rng.Intn(len(st.Jobs))
				st.Jobs = append(st.Jobs[:i], st.Jobs[i+1:]...)
			}
		case 2: // a pending job got started
			for i := range st.Jobs {
				if st.Jobs[i].State == batch.Pending {
					st.Jobs[i].State = batch.Running
					st.Jobs[i].Node = st.Nodes[rng.Intn(len(st.Nodes))].ID
					st.Jobs[i].Share = 4500
					break
				}
			}
		case 3: // a running job got suspended
			for i := range st.Jobs {
				if st.Jobs[i].State == batch.Running {
					st.Jobs[i].State = batch.Suspended
					st.Jobs[i].Node = ""
					st.Jobs[i].Share = 0
					break
				}
			}
		case 4: // demand drift
			for a := range st.Apps {
				st.Apps[a].Lambda *= 0.8 + rng.Float64()*0.4
			}
		case 5: // instance churn
			if len(st.Apps) > 0 {
				a := &st.Apps[rng.Intn(len(st.Apps))]
				n := st.Nodes[rng.Intn(len(st.Nodes))].ID
				if _, ok := a.Instances[n]; ok {
					delete(a.Instances, n)
				} else {
					a.Instances[n] = res.CPU(rng.Intn(9000))
				}
			}
		case 6: // share drift on running jobs
			for i := range st.Jobs {
				if st.Jobs[i].State == batch.Running {
					st.Jobs[i].Share = res.CPU(rng.Intn(4500) + 1)
				}
			}
		case 7: // nothing this tick
		}
	}
}

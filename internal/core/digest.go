package core

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"math"
	"sort"
	"strconv"

	"slaplace/internal/res"
	"slaplace/internal/workload/trans"
)

// Digest returns a stable hex fingerprint of the plan: every action in
// emission order plus every diagnostic field, floats hashed by their
// exact bit pattern and maps in sorted key order. Two plans digest
// equally iff they are byte-identical in everything a controller
// decides — the equivalence currency of the incremental-vs-from-scratch
// guarantees and the golden plan-sequence fixtures.
func (p *Plan) Digest() string {
	h := sha256.New()
	line := func(s string) {
		io.WriteString(h, s)
		io.WriteString(h, "\n")
	}
	f64 := func(v float64) {
		line(strconv.FormatUint(math.Float64bits(v), 16))
	}

	line("actions " + strconv.Itoa(len(p.Actions)))
	for _, a := range p.Actions {
		line(a.String())
	}
	f64(p.HypotheticalJobUtility)
	f64(p.EqualizedUtility)
	f64(float64(p.JobDemand))
	f64(float64(p.JobTarget))

	classes := make([]string, 0, len(p.ClassHypoUtility))
	for class := range p.ClassHypoUtility {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	line("classes " + strconv.Itoa(len(classes)))
	for _, class := range classes {
		line(class)
		f64(p.ClassHypoUtility[class])
	}

	hashApps := func(label string, m map[trans.AppID]float64) {
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		line(label + " " + strconv.Itoa(len(ids)))
		for _, id := range ids {
			line(id)
			f64(m[trans.AppID(id)])
		}
	}
	hashApps("prediction", p.AppPrediction)
	hashCPU := func(label string, m map[trans.AppID]res.CPU) {
		conv := make(map[trans.AppID]float64, len(m))
		for id, v := range m {
			conv[id] = float64(v)
		}
		hashApps(label, conv)
	}
	hashCPU("demand", p.AppDemand)
	hashCPU("target", p.AppTarget)

	return hex.EncodeToString(h.Sum(nil))
}

package core

import (
	"testing"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// TestJobAssignmentsSemantics applies a hand-built action list to a
// snapshot and checks every transition.
func TestJobAssignmentsSemantics(t *testing.T) {
	st := &State{
		Now: 100,
		Nodes: []NodeInfo{
			{ID: "n1", CPU: 9000, Mem: 16000},
			{ID: "n2", CPU: 9000, Mem: 16000},
		},
		Jobs: []JobInfo{
			{ID: "keep", State: batch.Running, Node: "n1", Share: 1000, Remaining: 1, MaxSpeed: 1},
			{ID: "susp", State: batch.Running, Node: "n1", Share: 2000, Remaining: 1, MaxSpeed: 1},
			{ID: "mig", State: batch.Running, Node: "n1", Share: 3000, Remaining: 1, MaxSpeed: 1},
			{ID: "reshare", State: batch.Running, Node: "n2", Share: 100, Remaining: 1, MaxSpeed: 1},
			{ID: "start", State: batch.Pending, Remaining: 1, MaxSpeed: 1},
			{ID: "resume", State: batch.Suspended, Remaining: 1, MaxSpeed: 1},
			{ID: "wait", State: batch.Pending, Remaining: 1, MaxSpeed: 1},
		},
	}
	plan := &Plan{Actions: []Action{
		SuspendJob{Job: "susp"},
		MigrateJob{Job: "mig", Dst: "n2", Share: 3500},
		SetJobShare{Job: "reshare", Share: 500},
		StartJob{Job: "start", Node: "n2", Share: 700},
		ResumeJob{Job: "resume", Node: "n1", Share: 800},
	}}
	got := plan.JobAssignments(st)
	want := map[batch.JobID]JobAssignment{
		"keep":    {State: batch.Running, Node: "n1", Share: 1000},
		"susp":    {State: batch.Suspended},
		"mig":     {State: batch.Running, Node: "n2", Share: 3500},
		"reshare": {State: batch.Running, Node: "n2", Share: 500},
		"start":   {State: batch.Running, Node: "n2", Share: 700},
		"resume":  {State: batch.Running, Node: "n1", Share: 800},
		"wait":    {State: batch.Pending},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d assignments, want %d", len(got), len(want))
	}
	for id, w := range want {
		if g := got[id]; g != w {
			t.Errorf("job %s: got %+v, want %+v", id, g, w)
		}
	}
}

// TestAppAssignmentsSemantics checks the instance-action transitions.
func TestAppAssignmentsSemantics(t *testing.T) {
	st := &State{
		Now:   0,
		Nodes: []NodeInfo{{ID: "n1", CPU: 9000, Mem: 16000}},
		Apps: []AppInfo{
			{ID: "web", Instances: map[cluster.NodeID]res.CPU{"n1": 1000, "n2": 2000}},
			{ID: "other", Instances: map[cluster.NodeID]res.CPU{}},
		},
	}
	plan := &Plan{Actions: []Action{
		RemoveInstance{App: "web", Node: "n2"},
		AddInstance{App: "web", Node: "n3", Share: 1500},
		SetInstanceShare{App: "web", Node: "n1", Share: 1200},
		AddInstance{App: "other", Node: "n1", Share: 300},
	}}
	got := plan.AppAssignments(st)
	web := got["web"]
	if len(web) != 2 || web["n1"] != 1200 || web["n3"] != 1500 {
		t.Errorf("web instances: %+v", web)
	}
	if other := got["other"]; len(other) != 1 || other["n1"] != 300 {
		t.Errorf("other instances: %+v", got["other"])
	}
	// The snapshot's own maps are untouched.
	if st.Apps[0].Instances["n1"] != 1000 || len(st.Apps[0].Instances) != 2 {
		t.Errorf("snapshot instance map mutated: %+v", st.Apps[0].Instances)
	}
}

// TestAssignmentsAgreeWithPipeline: on a real planning pass, the
// derived assignments must be coherent with the emitted actions — every
// started job runs where its action says, every suspended job holds no
// node, and totals line up with the action counts.
func TestAssignmentsAgreeWithPipeline(t *testing.T) {
	st := &State{Now: 1000}
	for i := 0; i < 4; i++ {
		st.Nodes = append(st.Nodes, NodeInfo{
			ID: cluster.NodeID(string(rune('a' + i))), CPU: 18000, Mem: 16000})
	}
	for i := 0; i < 20; i++ {
		info := JobInfo{
			ID:        batch.JobID(rune('a'+i%26)*100 + rune(i)),
			State:     batch.Pending,
			Remaining: res.Work(4500 * float64(2000+i*300)),
			MaxSpeed:  4500, Mem: 5000,
			Goal:      4000 + float64(i*500),
			Submitted: float64(i),
		}
		if i%3 == 0 {
			info.State = batch.Running
			info.Node = st.Nodes[i%4].ID
			info.Share = 4000
		}
		st.Jobs = append(st.Jobs, info)
	}
	plan := New(DefaultConfig()).Plan(st)
	got := plan.JobAssignments(st)
	if len(got) != len(st.Jobs) {
		t.Fatalf("%d assignments for %d jobs", len(got), len(st.Jobs))
	}
	for _, act := range plan.Actions {
		switch a := act.(type) {
		case StartJob:
			if g := got[a.Job]; g.State != batch.Running || g.Node != a.Node || g.Share != a.Share {
				t.Errorf("started job %s assignment %+v", a.Job, g)
			}
		case SuspendJob:
			if g := got[a.Job]; g.State != batch.Suspended || g.Node != "" || g.Share != 0 {
				t.Errorf("suspended job %s assignment %+v", a.Job, g)
			}
		}
	}
	// Every running assignment's node exists in the snapshot.
	for id, g := range got {
		if g.State == batch.Running {
			found := false
			for _, n := range st.Nodes {
				if n.ID == g.Node {
					found = true
				}
			}
			if !found {
				t.Errorf("job %s assigned to unknown node %q", id, g.Node)
			}
		}
	}
}

package core

import (
	"strings"
	"testing"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// invariantState builds the fixed snapshot the violation table plans
// against: two nodes, one job in each state, one web app with a single
// instance.
func invariantState() *State {
	return &State{
		Now: 1000,
		Nodes: []NodeInfo{
			{ID: "n1", CPU: 9000, Mem: 8000},
			{ID: "n2", CPU: 9000, Mem: 8000},
		},
		Jobs: []JobInfo{
			{ID: "run", State: batch.Running, Node: "n1", Share: 4000,
				Remaining: 1e6, MaxSpeed: 4500, Mem: 4000, Goal: 9000},
			{ID: "pend", State: batch.Pending,
				Remaining: 1e6, MaxSpeed: 4500, Mem: 4000, Goal: 9000},
			{ID: "susp", State: batch.Suspended,
				Remaining: 1e6, MaxSpeed: 4500, Mem: 4000, Goal: 9000},
		},
		Apps: []AppInfo{
			{ID: "web", Lambda: 10, RTGoal: 3, InstanceMem: 1000,
				MaxPerInstance: 9000, MinInstances: 1,
				Instances: map[cluster.NodeID]res.CPU{"n1": 2000}},
		},
	}
}

func TestCheckPlanViolations(t *testing.T) {
	cases := []struct {
		name    string
		actions []Action
		wantErr string // "" = plan must pass
	}{
		{"empty plan", nil, ""},
		{"sound mixed plan", []Action{
			RemoveInstance{App: "web", Node: "n1"},
			SuspendJob{Job: "run"},
			StartJob{Job: "pend", Node: "n2", Share: 4000},
			ResumeJob{Job: "susp", Node: "n1", Share: 4000},
			AddInstance{App: "web", Node: "n2", Share: 2000},
		}, ""},
		{"unknown job", []Action{SuspendJob{Job: "ghost"}}, "unknown job"},
		{"unknown node", []Action{StartJob{Job: "pend", Node: "n9", Share: 100}}, "unknown node"},
		{"unknown migrate target", []Action{MigrateJob{Job: "run", Dst: "n9", Share: 100}}, "unknown node"},
		{"unknown app", []Action{RemoveInstance{App: "ghost", Node: "n1"}}, "unknown app"},
		{"duplicate job action", []Action{
			SuspendJob{Job: "run"},
			SetJobShare{Job: "run", Share: 100},
		}, "two actions"},
		{"start a running job", []Action{StartJob{Job: "run", Node: "n2", Share: 100}}, "want pending"},
		{"resume a pending job", []Action{ResumeJob{Job: "pend", Node: "n2", Share: 100}}, "want suspended"},
		{"suspend a pending job", []Action{SuspendJob{Job: "pend"}}, "want running"},
		{"reshare a suspended job", []Action{SetJobShare{Job: "susp", Share: 100}}, "want running"},
		{"negative share", []Action{SetJobShare{Job: "run", Share: -1}}, "negative share"},
		{"duplicate instance action", []Action{
			SetInstanceShare{App: "web", Node: "n1", Share: 100},
			RemoveInstance{App: "web", Node: "n1"},
		}, "second action"},
		{"add over existing instance", []Action{AddInstance{App: "web", Node: "n1", Share: 100}}, "duplicate instance"},
		{"remove absent instance", []Action{RemoveInstance{App: "web", Node: "n2"}}, "no instance"},
		{"reshare absent instance", []Action{SetInstanceShare{App: "web", Node: "n2", Share: 100}}, "no instance"},
		{"memory overcommit", []Action{
			// n1 already hosts run (4000 MB) + instance (1000 MB);
			// resuming susp there lands 4000 MB more: 9000 > 8000.
			ResumeJob{Job: "susp", Node: "n1", Share: 1000},
		}, "over memory"},
		{"cpu overcommit", []Action{
			SetJobShare{Job: "run", Share: 9500},
		}, "over CPU"},
		{"freed memory reused", []Action{
			// Two-phase replay: suspending run releases n1, so resuming
			// susp into the freed space is sound even though the resume
			// is listed first.
			ResumeJob{Job: "susp", Node: "n1", Share: 4000},
			SuspendJob{Job: "run"},
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := invariantState()
			err := CheckPlan(st, &Plan{Actions: tc.actions})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("CheckPlan: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("CheckPlan: want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckPlan: want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestCheckPlanStrandedJob pins the crash-mid-cycle posture: a running
// job whose node vanished from the snapshot books no live capacity, and
// suspending it is a sound plan.
func TestCheckPlanStrandedJob(t *testing.T) {
	st := invariantState()
	st.Jobs = append(st.Jobs, JobInfo{
		ID: "stranded", State: batch.Running, Node: "gone", Share: 4500,
		Remaining: 1e6, MaxSpeed: 4500, Mem: 4000, Goal: 9000,
	})
	if err := CheckPlan(st, &Plan{Actions: []Action{SuspendJob{Job: "stranded"}}}); err != nil {
		t.Fatalf("suspending a stranded job: %v", err)
	}
	if err := CheckPlan(st, &Plan{}); err != nil {
		t.Fatalf("leaving a stranded job in place: %v", err)
	}
}

func TestCheckPlanNil(t *testing.T) {
	if err := CheckPlan(invariantState(), nil); err == nil {
		t.Fatal("nil plan must fail")
	}
}

func TestFreeingFirst(t *testing.T) {
	free := SuspendJob{Job: "a"}
	place := StartJob{Job: "b", Node: "n1", Share: 100}
	share := SetJobShare{Job: "c", Share: 100}
	cases := []struct {
		name    string
		actions []Action
		ok      bool
	}{
		{"empty", nil, true},
		{"frees only", []Action{free, RemoveInstance{App: "w", Node: "n1"}}, true},
		{"frees then places", []Action{free, place, share}, true},
		{"free after place", []Action{place, free}, false},
		{"free after share change", []Action{share, free}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := FreeingFirst(tc.actions)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want ordering error, got nil")
			}
		})
	}
}

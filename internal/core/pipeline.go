package core

import (
	"slaplace/internal/res"
	"slaplace/internal/utility"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// The placement controller is a staged pipeline. Each control cycle a
// fresh planContext is threaded through the phases in order:
//
//	targets         demand prediction and hypothetical-utility
//	                equalization; opens the ledgers and seeds the
//	                residency of running jobs (state.go, utility pkg)
//	web-placement   instance presence and reserved web share per node
//	                (place_web.go)
//	job-placement   the job run-set: who runs where, who is suspended,
//	                who waits (place_jobs.go)
//	shares          per-node CPU division: waterfill over placed jobs,
//	                surplus back to the web tier (shares.go)
//	rebalance       bounded live migrations for starved running jobs
//	                (rebalance.go)
//	emit            translate the planning records into the action
//	                list and the recorder predictions (emit.go)
//
// Phases communicate only through the context — each reads what
// earlier phases wrote — which makes them individually testable: build
// a context with newPlanContext, run a prefix of the pipeline, and
// inspect the books.

// Phase is one named stage of the placement pipeline.
type Phase struct {
	Name string
	Run  func(*planContext)
}

// planContext carries one planning pass's working state through the
// pipeline phases (configuration lives on the controller itself).
type planContext struct {
	st   *State
	plan *Plan

	ledgers *Ledgers
	planned []*PlannedJob

	// Phase-1 products consumed downstream.
	appCurves []utility.Curve
	appTarget map[trans.AppID]res.CPU
}

// newPlanContext opens a planning pass: empty plan, empty books.
func newPlanContext(st *State) *planContext {
	return &planContext{
		st:      st,
		plan:    NewPlan(),
		ledgers: NewLedgers(st.Nodes),
	}
}

// Pipeline returns the controller's phases in execution order.
func (c *PlacementController) Pipeline() []Phase {
	return []Phase{
		{"targets", c.phaseTargets},
		{"web-placement", c.phaseWebPlacement},
		{"job-placement", c.phaseJobPlacement},
		{"shares", c.phaseShares},
		{"rebalance", c.phaseRebalance},
		{"emit", c.phaseEmit},
	}
}

// PhaseNames lists the pipeline's stage names in order, for
// introspection and logging.
func (c *PlacementController) PhaseNames() []string {
	phases := c.Pipeline()
	names := make([]string, len(phases))
	for i, ph := range phases {
		names[i] = ph.Name
	}
	return names
}

// Plan implements Controller by running the full pipeline.
func (c *PlacementController) Plan(st *State) *Plan {
	ctx := newPlanContext(st)
	for _, ph := range c.Pipeline() {
		ph.Run(ctx)
	}
	return ctx.plan
}

// phaseTargets builds the utility curves, equalizes hypothetical
// utility over the cluster's total CPU power (the continuous,
// placement-oblivious allocation of the paper's §2), records the
// demand/prediction series, and opens the planning records: one ledger
// per node with running jobs' residency seeded, one PlannedJob per
// incomplete job carrying its equalized target.
func (c *PlacementController) phaseTargets(ctx *planContext) {
	st, plan := ctx.st, ctx.plan

	ctx.appCurves = make([]utility.Curve, len(st.Apps))
	for i := range st.Apps {
		ctx.appCurves[i] = st.Apps[i].Curve()
	}
	jobCurves := make([]utility.Curve, len(st.Jobs))
	for i := range st.Jobs {
		jobCurves[i] = st.Jobs[i].Curve(st.Now)
	}
	all := append(append([]utility.Curve{}, ctx.appCurves...), jobCurves...)
	eq := utility.Equalize(all, st.TotalCPU())
	plan.EqualizedUtility = eq.Equalized

	ctx.appTarget = make(map[trans.AppID]res.CPU, len(st.Apps))
	for i := range st.Apps {
		ctx.appTarget[st.Apps[i].ID] = eq.Shares[i].Alloc
		plan.AppDemand[st.Apps[i].ID] = ctx.appCurves[i].MaxUseful()
	}
	jobTarget := make(map[batch.JobID]res.CPU, len(st.Jobs))
	var jobUtilSum float64
	classSum := map[string]float64{}
	classN := map[string]int{}
	for i := range st.Jobs {
		sh := eq.Shares[len(st.Apps)+i]
		jobTarget[st.Jobs[i].ID] = sh.Alloc
		jobUtilSum += sh.Utility
		classSum[st.Jobs[i].Class] += sh.Utility
		classN[st.Jobs[i].Class]++
		plan.JobDemand += jobCurves[i].MaxUseful()
	}
	if len(st.Jobs) > 0 {
		plan.HypotheticalJobUtility = jobUtilSum / float64(len(st.Jobs))
		plan.ClassHypoUtility = make(map[string]float64, len(classSum))
		for class, sum := range classSum {
			plan.ClassHypoUtility[class] = sum / float64(classN[class])
		}
	}

	// Planning records, with running jobs' residency on the books.
	ctx.planned = make([]*PlannedJob, len(st.Jobs))
	for i := range st.Jobs {
		pj := &PlannedJob{Info: st.Jobs[i], Target: jobTarget[st.Jobs[i].ID]}
		ctx.planned[i] = pj
		if pj.Info.State == batch.Running {
			l, ok := ctx.ledgers.Get(pj.Info.Node)
			if !ok {
				// The hosting node vanished from the snapshot (offline
				// or failed). Recovery is the eviction path's job — the
				// vm manager suspends residents and the next snapshot
				// shows the job Suspended. Until then leave it alone.
				pj.Waiting = true
				continue
			}
			l.Occupy(pj.Info)
			pj.Node = pj.Info.Node
		}
	}
}

package core

import (
	"slaplace/internal/res"
	"slaplace/internal/utility"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// The placement controller is a staged pipeline. Each control cycle a
// planContext is threaded through the phases in order:
//
//	targets         demand prediction and hypothetical-utility
//	                equalization; opens the ledgers and seeds the
//	                residency of running jobs (state.go, utility pkg)
//	web-placement   instance presence and reserved web share per node
//	                (place_web.go)
//	job-placement   the job run-set: who runs where, who is suspended,
//	                who waits (place_jobs.go)
//	shares          per-node CPU division: waterfill over placed jobs,
//	                surplus back to the web tier (shares.go)
//	rebalance       bounded live migrations for starved running jobs
//	                (rebalance.go)
//	emit            translate the planning records into the action
//	                list and the recorder predictions (emit.go)
//
// Phases communicate only through the context — each reads what
// earlier phases wrote — which makes them individually testable: build
// a context with newPlanContext, run a prefix of the pipeline, and
// inspect the books.
//
// Plan itself is incremental across control cycles (incremental.go):
// when the cycle-over-cycle delta provably cannot change the discrete
// placement, the web-placement and job-placement phases are replaced by
// wholesale carry-over of the previous placement. The fallback — and
// the reference semantics — is always the full phase list below.

// Phase is one named stage of the placement pipeline.
type Phase struct {
	Name string
	Run  func(*planContext)
}

// planContext carries one planning pass's working state through the
// pipeline phases (configuration lives on the controller itself).
type planContext struct {
	st   *State
	plan *Plan

	ledgers *Ledgers
	planned []*PlannedJob
	// order is the job priority order the job-placement phase (full or
	// carry-over) used; the controller memoizes it for the next cycle.
	order []*PlannedJob

	// arena, when non-nil, recycles the books across cycles.
	arena *planArena

	// scratch is the phases' recycled working storage (node indexes and
	// selection buffers) — the arena's when planning through the
	// controller, lazily allocated for standalone contexts.
	scratch *planScratch

	// Phase-1 products consumed downstream.
	appCurves []utility.Curve
	appTarget map[trans.AppID]res.CPU
}

// ensureScratch returns the context's working storage, allocating a
// standalone one when the context is not arena-backed.
func (ctx *planContext) ensureScratch() *planScratch {
	if ctx.scratch == nil {
		ctx.scratch = &planScratch{}
	}
	return ctx.scratch
}

// newPlanContext opens a standalone planning pass: empty plan, freshly
// allocated books. The controller's Plan goes through the arena-backed
// planArena.context instead; this constructor serves phase-level tests
// and one-shot planning.
func newPlanContext(st *State) *planContext {
	return &planContext{
		st:        st,
		plan:      NewPlan(),
		ledgers:   NewLedgers(st.Nodes),
		appTarget: make(map[trans.AppID]res.CPU, len(st.Apps)),
	}
}

// Pipeline returns the controller's phases in execution order — the
// from-scratch reference semantics of Plan.
func (c *PlacementController) Pipeline() []Phase {
	return []Phase{
		{"targets", c.phaseTargets},
		{"web-placement", c.phaseWebPlacement},
		{"job-placement", c.phaseJobPlacement},
		{"shares", c.phaseShares},
		{"rebalance", c.phaseRebalance},
		{"emit", c.phaseEmit},
	}
}

// PhaseNames lists the pipeline's stage names in order, for
// introspection and logging.
func (c *PlacementController) PhaseNames() []string {
	phases := c.Pipeline()
	names := make([]string, len(phases))
	for i, ph := range phases {
		names[i] = ph.Name
	}
	return names
}

// Plan implements Controller by running the pipeline with the
// incremental shortcuts of incremental.go: an unchanged snapshot
// replays the cached plan, a steady-state delta carries the previous
// placement over wholesale, and anything else runs every phase from
// scratch. All three tiers yield byte-identical plans; reuse only ever
// changes the cost, never the answer. Plan is safe for concurrent use,
// but shared controllers serialize on an internal lock — give each
// parallel scenario its own controller.
func (c *PlacementController) Plan(st *State) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.cfg.Incremental {
		if plan := c.replayMemo(st); plan != nil {
			c.stats.Replayed++
			c.stats.LastMode = PlanReplayed
			// An identical snapshot is, by definition, zero drift.
			c.stats.LastDemandDelta = 0
			return plan
		}
	}

	ctx := c.arena.context(st)
	c.phaseTargets(ctx)
	c.stats.LastDemandDelta = c.demandDelta(ctx)

	mode := PlanFull
	if c.cfg.Incremental && c.cfg.ChurnAware && c.webClean(ctx) {
		c.fastWebPlacement(ctx)
		if c.jobsSteady(ctx) {
			c.fastJobCarryOver(ctx)
			mode = PlanIncremental
		} else {
			// The web skeleton was clean (fastWebPlacement is exact),
			// but jobs may move: run the full job-placement phase.
			c.phaseJobPlacement(ctx)
		}
	} else {
		c.phaseWebPlacement(ctx)
		c.phaseJobPlacement(ctx)
	}
	c.phaseShares(ctx)
	c.phaseRebalance(ctx)
	c.phaseEmit(ctx)

	if mode == PlanIncremental {
		c.stats.Incremental++
	} else {
		c.stats.Full++
	}
	c.stats.LastMode = mode
	if c.cfg.Incremental {
		c.storeMemo(st, ctx)
	}
	c.arena.order = ctx.order
	return ctx.plan
}

// PlanStats implements PlanStatsProvider.
func (c *PlacementController) PlanStats() PlanStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetPlanCache drops the memoized previous cycle: the next Plan
// cannot replay a cached plan or reuse the cached priority order. The
// carry-over tier is memo-independent (its steadiness proofs read only
// the snapshot), so a steady snapshot still plans incrementally; to
// measure true from-scratch cost, build the controller with
// Config.Incremental=false as the benchmarks do. The recycled
// allocation arena is kept.
func (c *PlacementController) ResetPlanCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memo = nil
}

// phaseTargets builds the utility curves, equalizes hypothetical
// utility over the cluster's total CPU power (the continuous,
// placement-oblivious allocation of the paper's §2), records the
// demand/prediction series, and opens the planning records: one ledger
// per node with running jobs' residency seeded, one PlannedJob per
// incomplete job carrying its equalized target.
func (c *PlacementController) phaseTargets(ctx *planContext) {
	st, plan := ctx.st, ctx.plan
	if ctx.ledgers == nil {
		ctx.ledgers = NewLedgers(st.Nodes)
	}

	var curves []utility.Curve
	if a := ctx.arena; a != nil {
		ctx.appCurves = a.appCurves[:0]
		curves = a.curves[:0]
	}
	for i := range st.Apps {
		ctx.appCurves = append(ctx.appCurves, st.Apps[i].Curve())
	}
	curves = append(curves, ctx.appCurves...)
	if a := ctx.arena; a != nil {
		// Arena-backed pass: rebuild the job curves in the recycled slab
		// instead of allocating 10^5 fresh curves per cycle.
		slab := a.grabJobCurves(len(st.Jobs))
		for i := range st.Jobs {
			st.Jobs[i].FillCurve(&slab[i], st.Now)
			curves = append(curves, &slab[i])
		}
	} else {
		for i := range st.Jobs {
			curves = append(curves, st.Jobs[i].Curve(st.Now))
		}
	}
	if a := ctx.arena; a != nil {
		a.appCurves = ctx.appCurves
		a.curves = curves
	}
	jobCurves := curves[len(st.Apps):]
	var eqScratch *utility.EqualizeScratch
	if a := ctx.arena; a != nil {
		eqScratch = &a.eqScratch
	}
	eq := utility.EqualizeWith(eqScratch, curves, st.TotalCPU())
	plan.EqualizedUtility = eq.Equalized

	if ctx.appTarget == nil {
		ctx.appTarget = make(map[trans.AppID]res.CPU, len(st.Apps))
	}
	for i := range st.Apps {
		ctx.appTarget[st.Apps[i].ID] = eq.Shares[i].Alloc
		plan.AppDemand[st.Apps[i].ID] = ctx.appCurves[i].MaxUseful()
	}

	// Planning records, with running jobs' residency on the books.
	var records []PlannedJob
	if a := ctx.arena; a != nil {
		records, ctx.planned = a.grabRecords(len(st.Jobs))
	} else {
		records = make([]PlannedJob, len(st.Jobs))
		ctx.planned = make([]*PlannedJob, len(st.Jobs))
	}
	var jobUtilSum float64
	classSum := map[string]float64{}
	classN := map[string]int{}
	for i := range st.Jobs {
		sh := eq.Shares[len(st.Apps)+i]
		jobUtilSum += sh.Utility
		classSum[st.Jobs[i].Class] += sh.Utility
		classN[st.Jobs[i].Class]++
		plan.JobDemand += jobCurves[i].MaxUseful()

		records[i] = PlannedJob{
			Info: st.Jobs[i], Target: sh.Alloc, idx: int32(i),
			lax: st.Jobs[i].Laxity(st.Now),
		}
		pj := &records[i]
		ctx.planned[i] = pj
		if pj.Info.State == batch.Running {
			l, ok := ctx.ledgers.Get(pj.Info.Node)
			if !ok {
				// The hosting node vanished from the snapshot (offline
				// or failed). Recovery is the eviction path's job — the
				// vm manager suspends residents and the next snapshot
				// shows the job Suspended. Until then leave it alone.
				pj.Waiting = true
				continue
			}
			l.Occupy(pj.Info)
			pj.Node = pj.Info.Node
		}
	}
	if len(st.Jobs) > 0 {
		plan.HypotheticalJobUtility = jobUtilSum / float64(len(st.Jobs))
		plan.ClassHypoUtility = make(map[string]float64, len(classSum))
		for class, sum := range classSum {
			plan.ClassHypoUtility[class] = sum / float64(classN[class])
		}
	}
}

package core

import (
	"testing"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// TestInstanceSizingGrowsWithDemand: an app whose equalized target
// exceeds one node's capacity gets multiple instances.
func TestInstanceSizingGrowsWithDemand(t *testing.T) {
	c := New(DefaultConfig())
	// λ=30: λd = 40500; max-useful ≈ 130 500 > 18000 -> needs ≥ 8
	// instances on this 8-node cluster (capped to node count).
	app := webApp(t, "web", 30, nil)
	app.MinInstances = 1
	st := &State{Now: 0, Nodes: nodes(8), Apps: []AppInfo{app}}
	plan := c.Plan(st)
	_, _, _, _, _, adds, _, _ := plan.CountActions()
	if adds < 4 {
		t.Errorf("adds = %d, want several instances for a multi-node target", adds)
	}
	verifyFeasible(t, st, plan)
}

// TestInstanceRemovalWhenDemandShrinks: instances beyond the needed
// count (and above MinInstances) are retired.
func TestInstanceRemovalWhenDemandShrinks(t *testing.T) {
	c := New(DefaultConfig())
	// Tiny load on four instances: one is enough.
	inst := map[cluster.NodeID]res.CPU{"a": 4000, "b": 4000, "c": 4000, "d": 4000}
	app := webApp(t, "web", 1, inst) // λd = 1350; demand ≈ 4350
	app.MinInstances = 1
	st := &State{Now: 0, Nodes: nodes(4), Apps: []AppInfo{app}}
	plan := c.Plan(st)
	_, _, _, _, _, adds, removes, _ := plan.CountActions()
	if removes != 3 {
		t.Errorf("removes = %d, want 3 (down to a single instance)", removes)
	}
	if adds != 0 {
		t.Errorf("adds = %d alongside removals", adds)
	}
	verifyFeasible(t, st, plan)
}

// TestInstanceMinRespected: MinInstances holds even when demand is
// negligible.
func TestInstanceMinRespected(t *testing.T) {
	c := New(DefaultConfig())
	inst := map[cluster.NodeID]res.CPU{"a": 4000, "b": 4000, "c": 4000}
	app := webApp(t, "web", 1, inst)
	app.MinInstances = 3
	st := &State{Now: 0, Nodes: nodes(4), Apps: []AppInfo{app}}
	plan := c.Plan(st)
	_, _, _, _, _, _, removes, _ := plan.CountActions()
	if removes != 0 {
		t.Errorf("removed instances below MinInstances: %v", plan.Actions)
	}
}

// TestInstanceMaxRespected: MaxInstances caps horizontal growth even
// under huge demand.
func TestInstanceMaxRespected(t *testing.T) {
	c := New(DefaultConfig())
	app := webApp(t, "web", 60, nil) // demand far beyond 2 instances
	app.MinInstances = 1
	app.MaxInstances = 2
	st := &State{Now: 0, Nodes: nodes(6), Apps: []AppInfo{app}}
	plan := c.Plan(st)
	_, _, _, _, _, adds, _, _ := plan.CountActions()
	if adds > 2 {
		t.Errorf("adds = %d, want at most MaxInstances=2", adds)
	}
}

// TestInstancePlacementAvoidsFullNodes: new instances go only where
// memory is available.
func TestInstancePlacementAvoidsFullNodes(t *testing.T) {
	c := New(DefaultConfig())
	// Node "a" is packed with 3 running jobs (15000 of 16000 MB used),
	// leaving exactly 1000 MB — enough for the 1000 MB instance. Shrink
	// node "a"'s memory so it cannot host an instance at all.
	st := &State{Now: 0, Nodes: nodes(2)}
	st.Nodes[0].Mem = 15000
	for i := 0; i < 3; i++ {
		j := job(string(rune('1'+i)), batch.Running, "a", 4500, res.Work(4500*1000), 9000)
		st.Jobs = append(st.Jobs, j)
	}
	app := webApp(t, "web", 5, nil)
	app.MinInstances = 1
	app.MaxInstances = 1
	st.Apps = []AppInfo{app}
	plan := c.Plan(st)
	for _, act := range plan.Actions {
		if a, ok := act.(AddInstance); ok && a.Node == "a" {
			t.Errorf("instance placed on memory-full node: %v", a)
		}
	}
	verifyFeasible(t, st, plan)
}

package core

import (
	"testing"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// pipelineState builds a contended snapshot for phase tests: three
// nodes, one web app with an instance, one running and two pending
// jobs.
func pipelineState(t *testing.T) *State {
	t.Helper()
	return &State{
		Now:   1000,
		Nodes: nodes(3),
		Jobs: []JobInfo{
			job("running", batch.Running, "a", 4500, res.Work(4500*5000), 12000),
			job("pending1", batch.Pending, "", 0, res.Work(4500*5000), 12000),
			job("pending2", batch.Pending, "", 0, res.Work(4500*5000), 13000),
		},
		Apps: []AppInfo{webApp(t, "web", 40, map[cluster.NodeID]res.CPU{"a": 9000})},
	}
}

func TestPipelinePhaseNames(t *testing.T) {
	c := New(DefaultConfig())
	want := []string{"targets", "web-placement", "job-placement", "shares", "rebalance", "emit"}
	got := c.PhaseNames()
	if len(got) != len(want) {
		t.Fatalf("phase count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("phase %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// runPrefix executes the first n pipeline phases over a fresh context.
func runPrefix(t *testing.T, st *State, n int) *planContext {
	t.Helper()
	c := New(DefaultConfig())
	ctx := newPlanContext(st)
	for _, ph := range c.Pipeline()[:n] {
		ph.Run(ctx)
	}
	return ctx
}

// TestPhaseTargets checks the first phase in isolation: equalized
// targets exist for every workload, and running jobs' residency is on
// the books before anything is placed.
func TestPhaseTargets(t *testing.T) {
	st := pipelineState(t)
	ctx := runPrefix(t, st, 1)

	if ctx.plan.EqualizedUtility == 0 {
		t.Error("no equalized utility")
	}
	if len(ctx.appTarget) != 1 {
		t.Fatalf("app targets: %d", len(ctx.appTarget))
	}
	if len(ctx.planned) != 3 {
		t.Fatalf("planned jobs: %d", len(ctx.planned))
	}
	for _, pj := range ctx.planned {
		if pj.Target <= 0 {
			t.Errorf("job %s target %v, want > 0", pj.Info.ID, pj.Target)
		}
	}
	l, _ := ctx.ledgers.Get("a")
	if l.MemUsed != 5000 {
		t.Errorf("running residency not seeded: node a MemUsed = %v", l.MemUsed)
	}
	if len(ctx.plan.Actions) != 0 {
		t.Errorf("targets phase emitted %d actions", len(ctx.plan.Actions))
	}
}

// TestPhaseWebPlacement checks the second phase in isolation: the web
// tier holds reserved share and instance memory, before any job moves.
func TestPhaseWebPlacement(t *testing.T) {
	st := pipelineState(t)
	ctx := runPrefix(t, st, 2)

	var webShare res.CPU
	var webMem res.Memory
	ctx.ledgers.Each(func(l *Ledger) {
		webShare += l.WebShare
		for range l.WebApps {
			webMem += 1000
		}
	})
	if webShare <= 0 {
		t.Error("no web share reserved")
	}
	// No job placement yet: every pending job is still unassigned.
	for _, pj := range ctx.planned {
		if pj.PlacedNew {
			t.Errorf("job %s placed before the job-placement phase", pj.Info.ID)
		}
	}
}

// TestPhaseJobPlacement checks the third phase: all three jobs fit (3
// nodes × 16 GB vs 1 GB web instance + 5 GB per job), nobody waits.
func TestPhaseJobPlacement(t *testing.T) {
	st := pipelineState(t)
	ctx := runPrefix(t, st, 3)

	for _, pj := range ctx.planned {
		if pj.Waiting || pj.Suspend {
			t.Errorf("job %s not placed (waiting=%v suspend=%v)", pj.Info.ID, pj.Waiting, pj.Suspend)
		}
		if pj.Node == "" {
			t.Errorf("job %s has no node", pj.Info.ID)
		}
	}
	// Ledger memory never exceeds capacity.
	ctx.ledgers.Each(func(l *Ledger) {
		if l.MemUsed > l.Info.Mem {
			t.Errorf("node %s over memory: %v > %v", l.Info.ID, l.MemUsed, l.Info.Mem)
		}
	})
	// Shares are not assigned yet.
	for _, pj := range ctx.planned {
		if pj.Share != 0 {
			t.Errorf("job %s has share %v before the shares phase", pj.Info.ID, pj.Share)
		}
	}
}

// TestPhaseShares checks the fourth phase: every placed job receives a
// share, and per-node shares fit within CPU capacity.
func TestPhaseShares(t *testing.T) {
	st := pipelineState(t)
	ctx := runPrefix(t, st, 4)

	for _, pj := range ctx.planned {
		if !pj.Waiting && !pj.Suspend && pj.Share <= 0 {
			t.Errorf("job %s placed but shareless", pj.Info.ID)
		}
	}
	ctx.ledgers.Each(func(l *Ledger) {
		total := l.WebShare
		for _, pj := range l.Jobs {
			total += pj.Share
		}
		if total > l.Info.CPU*(1+1e-9) {
			t.Errorf("node %s over CPU: %v > %v", l.Info.ID, total, l.Info.CPU)
		}
	})
}

// TestPipelineMatchesPlan confirms running the phases one by one is
// exactly Plan().
func TestPipelineMatchesPlan(t *testing.T) {
	c := New(DefaultConfig())
	st := pipelineState(t)
	ctx := newPlanContext(st)
	for _, ph := range c.Pipeline() {
		ph.Run(ctx)
	}
	direct := c.Plan(pipelineState(t))
	if len(ctx.plan.Actions) != len(direct.Actions) {
		t.Fatalf("action counts differ: %d vs %d", len(ctx.plan.Actions), len(direct.Actions))
	}
	for i := range direct.Actions {
		if ctx.plan.Actions[i].String() != direct.Actions[i].String() {
			t.Errorf("action %d: %v vs %v", i, ctx.plan.Actions[i], direct.Actions[i])
		}
	}
	if ctx.plan.EqualizedUtility != direct.EqualizedUtility {
		t.Errorf("equalized utility differs: %v vs %v", ctx.plan.EqualizedUtility, direct.EqualizedUtility)
	}
}

package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// pj builds a PlannedJob with the given speed cap for waterfill tests.
func pj(cap res.CPU) *PlannedJob {
	return &PlannedJob{Info: JobInfo{MaxSpeed: cap}}
}

func TestWaterfillEqualSplitUnderCaps(t *testing.T) {
	jobs := []*PlannedJob{pj(4500), pj(4500), pj(4500)}
	shares := waterfillJobs(jobs, 9000)
	for i, s := range shares {
		if !res.AlmostEqual(s, 3000) {
			t.Errorf("share %d = %v, want 3000", i, s)
		}
	}
}

func TestWaterfillCapsAndRedistributes(t *testing.T) {
	// One small-cap job: its surplus flows to the others.
	jobs := []*PlannedJob{pj(1000), pj(4500), pj(4500)}
	shares := waterfillJobs(jobs, 9000)
	if !res.AlmostEqual(shares[0], 1000) {
		t.Errorf("capped job share %v, want 1000", shares[0])
	}
	if !res.AlmostEqual(shares[1], 4000) || !res.AlmostEqual(shares[2], 4000) {
		t.Errorf("redistribution wrong: %v, %v, want 4000 each", shares[1], shares[2])
	}
}

func TestWaterfillAbundantCapacity(t *testing.T) {
	jobs := []*PlannedJob{pj(4500), pj(4500)}
	shares := waterfillJobs(jobs, 100000)
	for i, s := range shares {
		if !res.AlmostEqual(s, 4500) {
			t.Errorf("share %d = %v, want speed cap", i, s)
		}
	}
}

func TestWaterfillEdgeCases(t *testing.T) {
	if got := waterfillJobs(nil, 1000); len(got) != 0 {
		t.Error("empty jobs produced shares")
	}
	shares := waterfillJobs([]*PlannedJob{pj(4500)}, 0)
	if shares[0] != 0 {
		t.Errorf("zero capacity granted %v", shares[0])
	}
}

// Property: waterfill conserves capacity (never over-allocates) and
// respects every cap.
func TestWaterfillProperty(t *testing.T) {
	f := func(nRaw uint8, capRaw uint32, caps []uint16) bool {
		n := int(nRaw%8) + 1
		capacity := res.CPU(capRaw % 100000)
		jobs := make([]*PlannedJob, n)
		for i := range jobs {
			c := res.CPU(1000)
			if i < len(caps) {
				c = res.CPU(caps[i]%9000) + 1
			}
			jobs[i] = pj(c)
		}
		shares := waterfillJobs(jobs, capacity)
		var sum res.CPU
		for i, s := range shares {
			if s < 0 || s > jobs[i].Info.MaxSpeed*(1+1e-9) {
				return false
			}
			sum += s
		}
		return res.AtMost(sum, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJobLessOrdering(t *testing.T) {
	now := 1000.0
	mk := func(id string, goal float64, state batch.State, submitted float64) *PlannedJob {
		pj := &PlannedJob{Info: JobInfo{
			ID: batch.JobID(id), Goal: goal, State: state,
			Remaining: res.Work(4500 * 100), MaxSpeed: 4500, Submitted: submitted,
		}}
		pj.lax = pj.Info.Laxity(now)
		return pj
	}
	// Laxity = (goal - now) - 100.
	urgent := mk("urgent", 1200, batch.Pending, 5)      // laxity 100
	relaxed := mk("relaxed", 9000, batch.Pending, 1)    // laxity 7900
	runningTie := mk("running", 1200, batch.Running, 9) // same laxity as urgent
	earlyTie := mk("early", 1200, batch.Pending, 1)     // same laxity, earlier submit

	jobs := []*PlannedJob{relaxed, urgent, runningTie, earlyTie}
	sort.SliceStable(jobs, func(i, j int) bool { return jobLess(jobs[i], jobs[j]) })

	// Running wins the laxity tie; then earlier submission; relaxed last.
	wantOrder := []string{"running", "early", "urgent", "relaxed"}
	for i, w := range wantOrder {
		if string(jobs[i].Info.ID) != w {
			t.Fatalf("position %d = %v, want %v (full order: %v %v %v %v)",
				i, jobs[i].Info.ID, w,
				jobs[0].Info.ID, jobs[1].Info.ID, jobs[2].Info.ID, jobs[3].Info.ID)
		}
	}
}

func TestLaxity(t *testing.T) {
	j := JobInfo{Remaining: res.Work(4500 * 500), MaxSpeed: 4500, Goal: 2000}
	if got := j.Laxity(1000); math.Abs(got-500) > 1e-9 {
		t.Errorf("laxity = %v, want 500", got)
	}
	// Unreachable goal -> negative laxity.
	if got := j.Laxity(1800); got >= 0 {
		t.Errorf("late job laxity = %v, want negative", got)
	}
}

func TestStateTotals(t *testing.T) {
	st := &State{Nodes: nodes(3)}
	if st.TotalCPU() != 3*18000 {
		t.Errorf("TotalCPU = %v", st.TotalCPU())
	}
	if st.TotalMem() != 3*16000 {
		t.Errorf("TotalMem = %v", st.TotalMem())
	}
}

func TestActionStringsAndCount(t *testing.T) {
	actions := []Action{
		StartJob{Job: "j", Node: "n", Share: 1},
		ResumeJob{Job: "j", Node: "n", Share: 1},
		SuspendJob{Job: "j"},
		MigrateJob{Job: "j", Dst: "n", Share: 1},
		SetJobShare{Job: "j", Share: 1},
		AddInstance{App: "a", Node: "n", Share: 1},
		RemoveInstance{App: "a", Node: "n"},
		SetInstanceShare{App: "a", Node: "n", Share: 1},
	}
	for _, a := range actions {
		if a.String() == "" {
			t.Errorf("%T has empty string form", a)
		}
	}
	p := &Plan{Actions: actions}
	st, rs, su, mi, sh, ia, ir, is := p.CountActions()
	if st != 1 || rs != 1 || su != 1 || mi != 1 || sh != 1 || ia != 1 || ir != 1 || is != 1 {
		t.Errorf("CountActions = %d %d %d %d %d %d %d %d", st, rs, su, mi, sh, ia, ir, is)
	}
}

package core

import (
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// phaseRebalance plans live migrations for running jobs whose share on
// their node falls far below target while another node could do much
// better, bounded by MaxMigrationsPerCycle.
func (c *PlacementController) phaseRebalance(ctx *planContext) {
	if c.cfg.MaxMigrationsPerCycle <= 0 {
		return
	}
	ledgers, nodeOrder := ctx.ledgers, ctx.ledgers.Order()
	migrations := 0
	// Most starved first: ascending share/target ratio.
	cands := make([]*PlannedJob, 0, len(ctx.planned))
	for _, pj := range ctx.planned {
		if pj.Info.State != batch.Running || pj.Suspend || pj.Waiting || pj.PlacedNew || pj.Info.Migrating {
			continue
		}
		want := res.Min(pj.Target, pj.Info.MaxSpeed)
		if want <= 0 {
			continue
		}
		if pj.Share < res.CPU(c.cfg.MigrationThreshold)*want {
			cands = append(cands, pj)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		ri := float64(cands[i].Share) / float64(res.Min(cands[i].Target, cands[i].Info.MaxSpeed))
		rj := float64(cands[j].Share) / float64(res.Min(cands[j].Target, cands[j].Info.MaxSpeed))
		if ri != rj {
			return ri < rj
		}
		return cands[i].Info.ID < cands[j].Info.ID
	})
	for _, pj := range cands {
		if migrations >= c.cfg.MaxMigrationsPerCycle {
			break
		}
		var best cluster.NodeID
		var bestShare res.CPU
		for _, n := range nodeOrder {
			if n == pj.Node {
				continue
			}
			l, _ := ledgers.Get(n)
			if l.FreeMem() < pj.Info.Mem {
				continue
			}
			avail := l.FreeCPU()
			var jobsShare res.CPU
			for _, other := range l.Jobs {
				jobsShare += other.Share
			}
			projected := res.Min(avail-jobsShare, pj.Info.MaxSpeed)
			if projected > bestShare {
				best, bestShare = n, projected
			}
		}
		if best == "" || float64(bestShare) < c.cfg.MigrationGain*float64(pj.Share) {
			continue
		}
		src, _ := ledgers.Get(pj.Node)
		src.RemoveJob(pj)
		dst, _ := ledgers.Get(best)
		dst.AddJob(pj)
		pj.Migrate = true
		pj.Node = best
		pj.Share = bestShare
		migrations++
	}
}

package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// exhaustiveMaxPlaced computes, by brute force, the maximum number of
// jobs (given their memory footprints) that can be simultaneously
// packed onto nodes with the given free memory. Exponential; only for
// tiny validation instances.
func exhaustiveMaxPlaced(jobMems []res.Memory, freeMems []res.Memory) int {
	best := 0
	var recurse func(idx, placed int, free []res.Memory)
	recurse = func(idx, placed int, free []res.Memory) {
		if placed+(len(jobMems)-idx) <= best {
			return // cannot beat the incumbent
		}
		if idx == len(jobMems) {
			if placed > best {
				best = placed
			}
			return
		}
		// Skip this job.
		recurse(idx+1, placed, free)
		// Or place it on any node with room.
		for n := range free {
			if free[n] >= jobMems[idx] {
				free[n] -= jobMems[idx]
				recurse(idx+1, placed+1, free)
				free[n] += jobMems[idx]
			}
		}
	}
	recurse(0, 0, append([]res.Memory(nil), freeMems...))
	return best
}

// planPlacedCount counts jobs left running/placed by a plan over a
// state (running jobs kept unless suspended, plus starts/resumes).
func planPlacedCount(st *State, plan *Plan) int {
	placed := map[batch.JobID]bool{}
	for _, j := range st.Jobs {
		if j.State == batch.Running {
			placed[j.ID] = true
		}
	}
	for _, act := range plan.Actions {
		switch a := act.(type) {
		case StartJob:
			placed[a.Job] = true
		case ResumeJob:
			placed[a.Job] = true
		case SuspendJob:
			delete(placed, a.Job)
		}
	}
	return len(placed)
}

// TestGreedyPackerOptimalForIdenticalJobs: with identical job sizes
// (the paper's evaluation), the greedy placer must place exactly the
// exhaustive-optimal number of jobs.
func TestGreedyPackerOptimalForIdenticalJobs(t *testing.T) {
	c := New(DefaultConfig())
	f := func(nNodes, nJobs uint8) bool {
		nn := int(nNodes%3) + 1
		nj := int(nJobs%7) + 1
		st := &State{Now: 0, Nodes: nodes(nn)}
		jobMems := make([]res.Memory, nj)
		freeMems := make([]res.Memory, nn)
		for i := range freeMems {
			freeMems[i] = 16000
		}
		for i := 0; i < nj; i++ {
			st.Jobs = append(st.Jobs,
				job(fmt.Sprintf("j%d", i), batch.Pending, "", 0, res.Work(4500*1000), 3000))
			jobMems[i] = 5000
		}
		plan := c.Plan(st)
		return planPlacedCount(st, plan) == exhaustiveMaxPlaced(jobMems, freeMems)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGreedyPackerNearOptimalHeterogeneous: with mixed job sizes the
// placer is urgency-first first-fit — it may not reorder jobs by size,
// because placement priority IS the policy (most starved first, §2 of
// the paper). That heuristic cannot be cardinality-optimal for
// adversarial size mixes; this test pins its suboptimality to at most
// two jobs of the brute-force optimum on every 6-job instance family
// we can exhaustively check (and the identical-size case, the paper's
// evaluation, is exactly optimal — see the previous test).
func TestGreedyPackerNearOptimalHeterogeneous(t *testing.T) {
	c := New(DefaultConfig())
	sizes := []res.Memory{3000, 5000, 8000, 11000}
	worstGap := 0
	f := func(nNodes uint8, sizeSeed uint32) bool {
		nn := int(nNodes%3) + 1
		nj := 6
		st := &State{Now: 0, Nodes: nodes(nn)}
		jobMems := make([]res.Memory, nj)
		freeMems := make([]res.Memory, nn)
		for i := range freeMems {
			freeMems[i] = 16000
		}
		s := sizeSeed
		for i := 0; i < nj; i++ {
			mem := sizes[int(s)%len(sizes)]
			s = s/4 + 7
			j := job(fmt.Sprintf("j%d", i), batch.Pending, "", 0, res.Work(4500*1000), 3000)
			j.Mem = mem
			st.Jobs = append(st.Jobs, j)
			jobMems[i] = mem
		}
		plan := c.Plan(st)
		got := planPlacedCount(st, plan)
		opt := exhaustiveMaxPlaced(jobMems, freeMems)
		if opt-got > worstGap {
			worstGap = opt - got
		}
		return opt-got <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Errorf("greedy more than two jobs below optimum: %v", err)
	}
	t.Logf("worst greedy-vs-optimal gap observed: %d", worstGap)
}

// TestNoWaitingJobCouldBePlaced: maximality invariant — after planning,
// no waiting job fits in any node's remaining memory (the greedy packer
// never wastes an available slot).
func TestNoWaitingJobCouldBePlaced(t *testing.T) {
	c := New(DefaultConfig())
	sizes := []res.Memory{3000, 5000, 8000}
	f := func(nNodes, nJobs uint8, sizeSeed uint32) bool {
		nn := int(nNodes%4) + 1
		nj := int(nJobs%12) + 1
		st := &State{Now: 0, Nodes: nodes(nn)}
		s := sizeSeed
		for i := 0; i < nj; i++ {
			j := job(fmt.Sprintf("j%d", i), batch.Pending, "", 0, res.Work(4500*1000), 3000)
			j.Mem = sizes[int(s)%len(sizes)]
			s = s/4 + 13
			st.Jobs = append(st.Jobs, j)
		}
		plan := c.Plan(st)

		// Reconstruct final free memory and the waiting set.
		free := map[cluster.NodeID]res.Memory{}
		for _, n := range st.Nodes {
			free[n.ID] = n.Mem
		}
		waiting := map[batch.JobID]res.Memory{}
		for _, j := range st.Jobs {
			waiting[j.ID] = j.Mem
		}
		for _, act := range plan.Actions {
			if a, ok := act.(StartJob); ok {
				free[a.Node] -= waiting[a.Job]
				delete(waiting, a.Job)
			}
		}
		for id, mem := range waiting {
			for n, f := range free {
				if f >= mem {
					t.Logf("waiting job %v (%v) fits on %v (%v free)", id, mem, n, f)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"math"
	"testing"
	"testing/quick"

	"slaplace/internal/cluster"
	"slaplace/internal/queueing"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// nodes builds n uniform NodeInfos (paper shape: 18 GHz, 16 GB).
func nodes(n int) []NodeInfo {
	out := make([]NodeInfo, n)
	for i := range out {
		out[i] = NodeInfo{
			ID:  cluster.NodeID(string(rune('a' + i))),
			CPU: 18000,
			Mem: 16000,
		}
	}
	return out
}

// job builds a JobInfo with paper-like shape: 1-processor cap, 5 GB.
func job(id string, state batch.State, node cluster.NodeID, share res.CPU, remaining res.Work, goal float64) JobInfo {
	return JobInfo{
		ID:        batch.JobID(id),
		State:     state,
		Node:      node,
		Share:     share,
		Remaining: remaining,
		MaxSpeed:  4500,
		Mem:       5000,
		Goal:      goal,
	}
}

// webApp builds an AppInfo with an M/G/1-PS model (S = 0.3 s).
func webApp(t *testing.T, id string, lambda float64, instances map[cluster.NodeID]res.CPU) AppInfo {
	t.Helper()
	m, err := queueing.NewMG1PS(1350, 4500)
	if err != nil {
		t.Fatal(err)
	}
	if instances == nil {
		instances = map[cluster.NodeID]res.CPU{}
	}
	return AppInfo{
		ID:             trans.AppID(id),
		Lambda:         lambda,
		RTGoal:         3.0,
		Model:          m,
		InstanceMem:    1000,
		MaxPerInstance: 18000,
		MinInstances:   1,
		Instances:      instances,
	}
}

// verifyFeasible checks that executing the plan cannot violate node
// memory, per-job speed caps, or per-node CPU capacity.
func verifyFeasible(t *testing.T, st *State, plan *Plan) {
	t.Helper()
	mem := map[cluster.NodeID]res.Memory{}
	cpu := map[cluster.NodeID]res.CPU{}
	caps := map[cluster.NodeID]NodeInfo{}
	for _, n := range st.Nodes {
		caps[n.ID] = n
	}
	jobNode := map[batch.JobID]cluster.NodeID{}
	jobShare := map[batch.JobID]res.CPU{}
	jobInfo := map[batch.JobID]JobInfo{}
	for _, j := range st.Jobs {
		jobInfo[j.ID] = j
		if j.State == batch.Running {
			jobNode[j.ID] = j.Node
			jobShare[j.ID] = j.Share
		}
	}
	appInst := map[trans.AppID]map[cluster.NodeID]res.CPU{}
	appInfo := map[trans.AppID]AppInfo{}
	for _, a := range st.Apps {
		appInfo[a.ID] = a
		appInst[a.ID] = map[cluster.NodeID]res.CPU{}
		for n, s := range a.Instances {
			appInst[a.ID][n] = s
		}
	}
	// Apply actions to the final (post-settlement) placement.
	for _, act := range plan.Actions {
		switch a := act.(type) {
		case SuspendJob:
			if jobNode[a.Job] == "" {
				t.Errorf("suspend of non-running job %v", a.Job)
			}
			delete(jobNode, a.Job)
			delete(jobShare, a.Job)
		case StartJob:
			if jobInfo[a.Job].State != batch.Pending {
				t.Errorf("start of non-pending job %v", a.Job)
			}
			jobNode[a.Job] = a.Node
			jobShare[a.Job] = a.Share
		case ResumeJob:
			if jobInfo[a.Job].State == batch.Running {
				t.Errorf("resume of running job %v", a.Job)
			}
			jobNode[a.Job] = a.Node
			jobShare[a.Job] = a.Share
		case MigrateJob:
			if jobNode[a.Job] == "" {
				t.Errorf("migrate of non-running job %v", a.Job)
			}
			jobNode[a.Job] = a.Dst
			jobShare[a.Job] = a.Share
		case SetJobShare:
			if jobNode[a.Job] == "" {
				t.Errorf("reshare of non-running job %v", a.Job)
			}
			jobShare[a.Job] = a.Share
		case AddInstance:
			appInst[a.App][a.Node] = a.Share
		case RemoveInstance:
			if _, ok := appInst[a.App][a.Node]; !ok {
				t.Errorf("remove of absent instance %v/%v", a.App, a.Node)
			}
			delete(appInst[a.App], a.Node)
		case SetInstanceShare:
			if _, ok := appInst[a.App][a.Node]; !ok {
				t.Errorf("reshare of absent instance %v/%v", a.App, a.Node)
			}
			appInst[a.App][a.Node] = a.Share
		}
	}
	for id, n := range jobNode {
		mem[n] += jobInfo[id].Mem
		cpu[n] += jobShare[id]
		if jobShare[id] > jobInfo[id].MaxSpeed*(1+1e-9) {
			t.Errorf("job %v share %v beyond speed cap", id, jobShare[id])
		}
	}
	for id, insts := range appInst {
		for n, s := range insts {
			mem[n] += appInfo[id].InstanceMem
			cpu[n] += s
		}
	}
	for n, m := range mem {
		if m > caps[n].Mem {
			t.Errorf("node %v memory over capacity: %v > %v", n, m, caps[n].Mem)
		}
	}
	for n, c := range cpu {
		if c > caps[n].CPU*(1+1e-6) {
			t.Errorf("node %v CPU over capacity: %v > %v", n, c, caps[n].CPU)
		}
	}
}

func TestEmptyState(t *testing.T) {
	c := New(DefaultConfig())
	plan := c.Plan(&State{Now: 0, Nodes: nodes(2)})
	if len(plan.Actions) != 0 {
		t.Errorf("empty state produced %d actions", len(plan.Actions))
	}
	if plan.HypotheticalJobUtility != 0 || plan.JobDemand != 0 {
		t.Errorf("empty state diagnostics: %+v", plan)
	}
}

func TestPendingJobsGetPlaced(t *testing.T) {
	c := New(DefaultConfig())
	st := &State{
		Now:   0,
		Nodes: nodes(2),
		Jobs: []JobInfo{
			job("j1", batch.Pending, "", 0, res.Work(4500*1000), 3000),
			job("j2", batch.Pending, "", 0, res.Work(4500*1000), 3000),
		},
	}
	plan := c.Plan(st)
	starts, _, suspends, migs, _, _, _, _ := plan.CountActions()
	if starts != 2 {
		t.Errorf("starts = %d, want 2", starts)
	}
	if suspends != 0 || migs != 0 {
		t.Errorf("unexpected churn: %v", plan.Actions)
	}
	// Abundant capacity: both at full speed.
	for _, a := range plan.Actions {
		if s, ok := a.(StartJob); ok && !res.AlmostEqual(s.Share, 4500) {
			t.Errorf("start share = %v, want 4500", s.Share)
		}
	}
	verifyFeasible(t, st, plan)
}

func TestMemoryLimitCapsRunSet(t *testing.T) {
	c := New(DefaultConfig())
	// One node: 16000 MB, jobs 5000 MB each -> only 3 fit.
	st := &State{Now: 0, Nodes: nodes(1)}
	for i := 0; i < 5; i++ {
		st.Jobs = append(st.Jobs,
			job(string(rune('1'+i)), batch.Pending, "", 0, res.Work(4500*1000), 3000))
	}
	plan := c.Plan(st)
	starts, _, _, _, _, _, _, _ := plan.CountActions()
	if starts != 3 {
		t.Errorf("starts = %d, want 3 (memory limit)", starts)
	}
	verifyFeasible(t, st, plan)
}

func TestUrgentJobEvictsLeastUrgentVictim(t *testing.T) {
	c := New(DefaultConfig())
	// Node full with three running jobs; a suspended job far behind its
	// goal (urgent) must displace the most relaxed running job.
	st := &State{Now: 10000, Nodes: nodes(1)}
	st.Jobs = []JobInfo{
		job("relaxed", batch.Running, "a", 4500, res.Work(4500*1000), 90000),
		job("mid", batch.Running, "a", 4500, res.Work(4500*1000), 40000),
		job("tight", batch.Running, "a", 4500, res.Work(4500*1000), 20000),
		job("urgent", batch.Suspended, "", 0, res.Work(4500*1000), 12000),
	}
	plan := c.Plan(st)
	_, resumes, suspends, _, _, _, _, _ := plan.CountActions()
	if suspends != 1 || resumes != 1 {
		t.Fatalf("suspends=%d resumes=%d, want 1/1; actions: %v", suspends, resumes, plan.Actions)
	}
	for _, a := range plan.Actions {
		if s, ok := a.(SuspendJob); ok && s.Job != "relaxed" {
			t.Errorf("suspended %v, want the most relaxed job", s.Job)
		}
		if r, ok := a.(ResumeJob); ok && r.Job != "urgent" {
			t.Errorf("resumed %v, want the urgent job", r.Job)
		}
	}
	verifyFeasible(t, st, plan)
}

func TestStablePlacementEmitsNoActions(t *testing.T) {
	c := New(DefaultConfig())
	// Two running jobs at the shares the planner would choose; nothing
	// should change (stability / no oscillation).
	st := &State{Now: 0, Nodes: nodes(2)}
	st.Jobs = []JobInfo{
		job("j1", batch.Running, "a", 4500, res.Work(4500*1000), 3000),
		job("j2", batch.Running, "b", 4500, res.Work(4500*1000), 3000),
	}
	plan := c.Plan(st)
	if len(plan.Actions) != 0 {
		t.Errorf("stable state produced actions: %v", plan.Actions)
	}
}

func TestWebAppGetsInstancesAndReservation(t *testing.T) {
	c := New(DefaultConfig())
	st := &State{
		Now:   0,
		Nodes: nodes(4),
		// λd = 13500; max-useful demand ≈ 43500, well under the 72000
		// cluster so the app can saturate.
		Apps: []AppInfo{webApp(t, "web", 10, nil)},
	}
	plan := c.Plan(st)
	_, _, _, _, _, adds, removes, _ := plan.CountActions()
	if adds < 1 {
		t.Fatalf("no instances added: %v", plan.Actions)
	}
	if removes != 0 {
		t.Errorf("unexpected removals")
	}
	var total res.CPU
	for _, a := range plan.Actions {
		if add, ok := a.(AddInstance); ok {
			total += add.Share
		}
	}
	// Uncontended: the app should get (about) its max-useful demand.
	demand := plan.AppDemand["web"]
	if total < demand*0.95 || total > demand*1.05 {
		t.Errorf("planned web share %v, want ≈ demand %v", total, demand)
	}
	verifyFeasible(t, st, plan)
}

func TestMixedWorkloadSharesCapacity(t *testing.T) {
	c := New(DefaultConfig())
	// 2 nodes = 36000 MHz. Web λ=20 (λd=27000, demand ≈30000+) plus 6
	// jobs wanting 4500 each: contention forces a trade-off.
	inst := map[cluster.NodeID]res.CPU{"a": 9000, "b": 9000}
	st := &State{
		Now:   0,
		Nodes: nodes(2),
		Apps:  []AppInfo{webApp(t, "web", 20, inst)},
	}
	for i := 0; i < 6; i++ {
		st.Jobs = append(st.Jobs,
			job(string(rune('1'+i)), batch.Pending, "", 0, res.Work(4500*2000), 9000))
	}
	plan := c.Plan(st)
	if plan.AppTarget["web"] <= 0 {
		t.Error("web received no allocation under contention")
	}
	if plan.JobTarget <= 0 {
		t.Error("jobs received no allocation under contention")
	}
	sum := plan.AppTarget["web"] + plan.JobTarget
	if sum > st.TotalCPU()*(1+1e-6) {
		t.Errorf("allocations %v exceed capacity %v", sum, st.TotalCPU())
	}
	// Equalization: predicted utilities of web and jobs should be close
	// when neither is saturated.
	webU := plan.AppPrediction["web"]
	jobU := plan.HypotheticalJobUtility
	if math.Abs(webU-jobU) > 0.25 {
		t.Errorf("web %v vs jobs %v utility after placement", webU, jobU)
	}
	verifyFeasible(t, st, plan)
}

func TestSurplusCPUGoesToPlacedJobs(t *testing.T) {
	c := New(DefaultConfig())
	// 20 pending jobs on 1 node: only 3 fit; the hypothetical target per
	// job is small, but the 3 placed jobs should use the node (minus
	// nothing — no web), i.e. full speed each.
	st := &State{Now: 0, Nodes: nodes(1)}
	for i := 0; i < 20; i++ {
		st.Jobs = append(st.Jobs,
			job(string(rune('a'+i)), batch.Pending, "", 0, res.Work(4500*5000), 100000))
	}
	plan := c.Plan(st)
	for _, a := range plan.Actions {
		if s, ok := a.(StartJob); ok {
			if !res.AlmostEqual(s.Share, 4500) {
				t.Errorf("placed job share %v, want full speed 4500", s.Share)
			}
		}
	}
	verifyFeasible(t, st, plan)
}

func TestJobOnVanishedNodeLeftToEvictionPath(t *testing.T) {
	c := New(DefaultConfig())
	// Job claims to run on node "z" which is not in the snapshot: the
	// planner must not touch it (the vm eviction path will surface it
	// as Suspended next cycle), and must not crash.
	st := &State{Now: 0, Nodes: nodes(1)}
	st.Jobs = []JobInfo{job("lost", batch.Running, "z", 4500, res.Work(4500*1000), 3000)}
	plan := c.Plan(st)
	for _, a := range plan.Actions {
		t.Errorf("unexpected action for stranded job: %v", a)
	}
	// Once the snapshot reports it Suspended, it is re-placed.
	st.Jobs[0].State = batch.Suspended
	st.Jobs[0].Node = ""
	plan = c.Plan(st)
	_, resumes, _, _, _, _, _, _ := plan.CountActions()
	if resumes != 1 {
		t.Errorf("suspended job not re-placed: %v", plan.Actions)
	}
	verifyFeasible(t, st, plan)
}

func TestChurnObliviousAblationMigrates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChurnAware = false
	c := New(cfg)
	// Three jobs crowded on node a while b is empty: the churn-oblivious
	// planner rebalances by migration; the churn-aware one does not need
	// to (shares already achievable... node a: 3×4500=13500 < 18000).
	st := &State{Now: 0, Nodes: nodes(2)}
	st.Jobs = []JobInfo{
		job("j1", batch.Running, "a", 4500, res.Work(4500*1000), 3000),
		job("j2", batch.Running, "a", 4500, res.Work(4500*1000), 3000),
		job("j3", batch.Running, "a", 4500, res.Work(4500*1000), 3000),
	}
	plan := c.Plan(st)
	_, _, _, migs, _, _, _, _ := plan.CountActions()
	if migs == 0 {
		t.Errorf("churn-oblivious planner did not migrate: %v", plan.Actions)
	}
	aware := New(DefaultConfig()).Plan(st)
	_, _, _, migsAware, _, _, _, _ := aware.CountActions()
	if migsAware != 0 {
		t.Errorf("churn-aware planner migrated needlessly: %v", aware.Actions)
	}
	verifyFeasible(t, st, plan)
}

func TestMigrationRebalanceWhenStarving(t *testing.T) {
	c := New(DefaultConfig())
	// Node a hosts 3 jobs AND a web instance reserving most CPU; node b
	// is empty. The jobs on a starve (18000-16000=2000 across 3 jobs)
	// and should migrate toward b.
	inst := map[cluster.NodeID]res.CPU{"a": 16000}
	app := webApp(t, "web", 11, inst) // λd = 14850, demand ≈ 16000+
	app.MaxInstances = 1
	st := &State{Now: 0, Nodes: nodes(2), Apps: []AppInfo{app}}
	st.Jobs = []JobInfo{
		job("j1", batch.Running, "a", 700, res.Work(4500*1000), 10000),
		job("j2", batch.Running, "a", 700, res.Work(4500*1000), 10000),
		job("j3", batch.Running, "a", 700, res.Work(4500*1000), 10000),
	}
	plan := c.Plan(st)
	_, _, _, migs, _, _, _, _ := plan.CountActions()
	if migs == 0 {
		t.Errorf("starving jobs were not migrated: %v", plan.Actions)
	}
	verifyFeasible(t, st, plan)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ShareTolerance: -0.1, MigrationGain: 1.5},
		{ShareTolerance: 1.5, MigrationGain: 1.5},
		{MigrationThreshold: 2, MigrationGain: 1.5},
		{MigrationGain: 0.5},
		{MigrationGain: 1.5, MaxMigrationsPerCycle: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{MigrationGain: 0})
}

func TestPlanDeterminism(t *testing.T) {
	c := New(DefaultConfig())
	mk := func() *State {
		inst := map[cluster.NodeID]res.CPU{"a": 9000, "c": 9000}
		st := &State{Now: 5000, Nodes: nodes(3), Apps: []AppInfo{webApp(t, "web", 30, inst)}}
		for i := 0; i < 8; i++ {
			state := batch.Pending
			node := cluster.NodeID("")
			if i%3 == 0 {
				state, node = batch.Running, "b"
			}
			st.Jobs = append(st.Jobs,
				job(string(rune('a'+i)), state, node, 3000, res.Work(4500*float64(1000+i*100)), float64(8000+i*500)))
		}
		return st
	}
	p1 := c.Plan(mk())
	p2 := c.Plan(mk())
	if len(p1.Actions) != len(p2.Actions) {
		t.Fatalf("plans differ in length: %d vs %d", len(p1.Actions), len(p2.Actions))
	}
	for i := range p1.Actions {
		if p1.Actions[i].String() != p2.Actions[i].String() {
			t.Errorf("action %d differs: %v vs %v", i, p1.Actions[i], p2.Actions[i])
		}
	}
}

// Property: for arbitrary job populations the plan is always feasible
// and never suspends more jobs than it places.
func TestPlanFeasibilityProperty(t *testing.T) {
	c := New(DefaultConfig())
	f := func(nJobs, nRunning uint8, seed uint8) bool {
		nj := int(nJobs%30) + 1
		st := &State{Now: 10000, Nodes: nodes(3)}
		running := 0
		for i := 0; i < nj; i++ {
			state := batch.Pending
			node := cluster.NodeID("")
			share := res.CPU(0)
			// Pack up to nRunning jobs onto nodes round-robin, max 3 per
			// node (memory).
			if running < int(nRunning%10) && running < 9 {
				state = batch.Running
				node = st.Nodes[running%3].ID
				share = 4500
				running++
			}
			goal := 10000 + float64((int(seed)+i*137)%20000) + 500
			st.Jobs = append(st.Jobs, job(
				string(rune('A'+i)), state, node, share,
				res.Work(4500*float64(500+(i*97)%3000)), goal))
		}
		plan := c.Plan(st)
		// Reuse the testing checker: collect failures via a sub-test
		// proxy is awkward in quick.Check, so inline the memory check.
		memUse := map[cluster.NodeID]res.Memory{}
		jobNode := map[batch.JobID]cluster.NodeID{}
		for _, j := range st.Jobs {
			if j.State == batch.Running {
				jobNode[j.ID] = j.Node
			}
		}
		starts, resumes, suspends := 0, 0, 0
		for _, act := range plan.Actions {
			switch a := act.(type) {
			case SuspendJob:
				delete(jobNode, a.Job)
				suspends++
			case StartJob:
				jobNode[a.Job] = a.Node
				starts++
			case ResumeJob:
				jobNode[a.Job] = a.Node
				resumes++
			case MigrateJob:
				jobNode[a.Job] = a.Dst
			}
		}
		for _, n := range jobNode {
			memUse[n] += 5000
		}
		for _, n := range st.Nodes {
			if memUse[n.ID] > n.Mem {
				return false
			}
		}
		return suspends <= starts+resumes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEvictionMarginDampsThrash: with hysteresis, a marginally more
// urgent waiting job does NOT displace a running one; without it, it
// does.
func TestEvictionMarginDampsThrash(t *testing.T) {
	mkState := func() *State {
		st := &State{Now: 10000, Nodes: nodes(1)}
		st.Jobs = []JobInfo{
			job("r1", batch.Running, "a", 4500, res.Work(4500*1000), 32000),
			job("r2", batch.Running, "a", 4500, res.Work(4500*1000), 33000),
			job("r3", batch.Running, "a", 4500, res.Work(4500*1000), 34000),
			// 500 s more urgent than r3 (laxity 22500 vs 23000).
			job("w", batch.Suspended, "", 0, res.Work(4500*1000), 33500),
		}
		return st
	}
	pure := New(DefaultConfig())
	plan := pure.Plan(mkState())
	_, _, suspends, _, _, _, _, _ := plan.CountActions()
	if suspends != 1 {
		t.Errorf("pure policy suspends = %d, want 1 (w displaces r3)", suspends)
	}
	cfg := DefaultConfig()
	cfg.EvictionMargin = 1200 // one control cycle of hysteresis
	damped := New(cfg)
	plan = damped.Plan(mkState())
	_, _, suspends, _, _, _, _, _ = plan.CountActions()
	if suspends != 0 {
		t.Errorf("damped policy suspends = %d, want 0 (500 s < margin)", suspends)
	}
	// A much more urgent job still gets through the margin.
	st := mkState()
	st.Jobs[3].Goal = 25000 // laxity 14000, far below r3's 23000
	plan = damped.Plan(st)
	_, _, suspends, _, _, _, _, _ = plan.CountActions()
	if suspends != 1 {
		t.Errorf("damped policy blocked a genuinely urgent eviction: suspends = %d", suspends)
	}
}

func TestConfigRejectsNegativeEvictionMargin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EvictionMargin = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative margin accepted")
	}
}

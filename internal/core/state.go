// Package core implements the paper's primary contribution: the
// placement controller that manages heterogeneous workloads — web
// applications with response-time SLAs and long-running jobs with
// completion-time SLAs — on one virtualized cluster.
//
// Every control cycle (600 s in the paper) the controller receives a
// State snapshot and produces a Plan:
//
//  1. Build a utility curve per workload (per job, per application)
//     from current progress, goals and measured arrival rates.
//  2. Equalize hypothetical utility across all curves over the
//     cluster's total CPU power (internal/utility) — the continuous,
//     placement-oblivious allocation the paper describes in §2.
//  3. Round the continuous allocation into a discrete placement under
//     per-node memory constraints, preferring to keep work where it
//     runs (suspend/resume/migrate have real costs), suspending the
//     least urgent jobs under memory pressure and reserving each web
//     application's equalized share on the nodes of its instances.
//
// The Controller interface is shared with internal/baseline so the
// benchmark harness can swap policies freely.
package core

import (
	"fmt"
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/queueing"
	"slaplace/internal/res"
	"slaplace/internal/utility"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// NodeInfo is a node's capacity as seen by the planner.
type NodeInfo struct {
	ID  cluster.NodeID
	CPU res.CPU
	Mem res.Memory
}

// JobInfo is one incomplete job's snapshot.
type JobInfo struct {
	ID        batch.JobID
	Class     string         // job class name (service differentiation)
	State     batch.State    // Pending, Running or Suspended
	Node      cluster.NodeID // hosting node when Running ("" otherwise)
	Share     res.CPU        // current share when Running
	Migrating bool           // a live migration is already in flight
	Remaining res.Work       // work left
	MaxSpeed  res.CPU
	Mem       res.Memory
	Goal      float64 // absolute completion goal
	Submitted float64
	Fn        utility.Function // nil = default
}

// Laxity is the job's slack: time to goal minus remaining run time at
// full speed. Negative means the goal is no longer reachable. The
// planner runs the least-lax jobs first — the discrete counterpart of
// "give to the least satisfied".
func (j JobInfo) Laxity(now float64) float64 {
	return (j.Goal - now) - j.Remaining.Seconds(j.MaxSpeed)
}

// Curve builds the job's hypothetical-utility curve.
func (j JobInfo) Curve(now float64) *utility.JobCurve {
	return utility.NewJobCurve(string(j.ID), now, j.Remaining, j.MaxSpeed, j.Goal, j.Fn)
}

// FillCurve rebuilds the job's utility curve in place — the
// allocation-free counterpart of Curve for arena-recycled curve slabs.
func (j *JobInfo) FillCurve(c *utility.JobCurve, now float64) {
	c.Fill(string(j.ID), now, j.Remaining, j.MaxSpeed, j.Goal, j.Fn)
}

// AppInfo is one web application's snapshot.
type AppInfo struct {
	ID             trans.AppID
	Lambda         float64 // measured arrival rate (req/s)
	RTGoal         float64
	Model          queueing.Model
	Fn             utility.Function // nil = default
	InstanceMem    res.Memory
	MaxPerInstance res.CPU
	MinInstances   int
	MaxInstances   int // 0 = unbounded
	// Instances maps hosting node to the instance's current share.
	Instances map[cluster.NodeID]res.CPU
	// MeasuredRT is the observed mean response time this cycle
	// (+Inf when overloaded; 0 when unknown).
	MeasuredRT float64
}

// Curve builds the app's utility curve at its measured arrival rate.
func (a AppInfo) Curve() *utility.TransCurve {
	return utility.NewTransCurve(string(a.ID), a.Lambda, a.RTGoal, a.Model, a.Fn)
}

// InstanceNodes returns the instance-hosting nodes in sorted order.
func (a AppInfo) InstanceNodes() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(a.Instances))
	for n := range a.Instances {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// State is the monitoring snapshot a controller plans from. Only
// incomplete jobs appear. States are value snapshots: planning must not
// mutate the world.
type State struct {
	Now   float64
	Nodes []NodeInfo
	Jobs  []JobInfo
	Apps  []AppInfo

	// appIdx is the lazily built ID→position lookup behind AppByID;
	// appIdxLen/appIdxHead fingerprint the Apps slice it was built for.
	appIdx     map[trans.AppID]int32
	appIdxLen  int
	appIdxHead *AppInfo
}

// buildAppIdx (re)builds the ID→position lookup, first match winning
// like a scan of Apps would.
func (s *State) buildAppIdx() {
	s.appIdx = make(map[trans.AppID]int32, len(s.Apps))
	for i := range s.Apps {
		if _, dup := s.appIdx[s.Apps[i].ID]; !dup {
			s.appIdx[s.Apps[i].ID] = int32(i)
		}
	}
	s.appIdxLen = len(s.Apps)
	s.appIdxHead = nil
	if len(s.Apps) > 0 {
		s.appIdxHead = &s.Apps[0]
	}
}

// AppByID returns the application with the given ID (the first match,
// like a scan of Apps), or nil. The lookup index is built on first use
// and rebuilt when the Apps slice is replaced or resized, so planning
// phases look apps up by ID in O(1) — including repeated lookups of
// absent IDs. Lazy building is not synchronized: a State must not see
// its first AppByID call from two goroutines at once (planners own
// their snapshots, so this does not arise).
func (s *State) AppByID(id trans.AppID) *AppInfo {
	if s.appIdx == nil || s.appIdxLen != len(s.Apps) ||
		(len(s.Apps) > 0 && s.appIdxHead != &s.Apps[0]) {
		s.buildAppIdx()
	}
	if i, ok := s.appIdx[id]; ok {
		if s.Apps[i].ID == id {
			return &s.Apps[i]
		}
		// The entry's ID was rewritten in place since the build:
		// rebuild once and retry. (A rewrite can only be detected on a
		// hit; States are value snapshots, so in-place ID rewrites
		// between lookups are out of contract anyway.)
		s.buildAppIdx()
		if i, ok := s.appIdx[id]; ok {
			return &s.Apps[i]
		}
	}
	return nil
}

// TotalCPU sums node CPU capacity.
func (s *State) TotalCPU() res.CPU {
	var sum res.CPU
	for _, n := range s.Nodes {
		sum += n.CPU
	}
	return sum
}

// TotalMem sums node memory capacity.
func (s *State) TotalMem() res.Memory {
	var sum res.Memory
	for _, n := range s.Nodes {
		sum += n.Mem
	}
	return sum
}

// Action is one placement decision. The executor in internal/control
// translates actions into vm/workload operations, sequencing suspends
// before placements that need the freed memory.
type Action interface {
	fmt.Stringer
	isAction()
}

// StartJob places a pending job.
type StartJob struct {
	Job   batch.JobID
	Node  cluster.NodeID
	Share res.CPU
}

func (StartJob) isAction() {}

// String implements fmt.Stringer.
func (a StartJob) String() string {
	return fmt.Sprintf("start job %s on %s @ %v", a.Job, a.Node, a.Share)
}

// ResumeJob restores a suspended job.
type ResumeJob struct {
	Job   batch.JobID
	Node  cluster.NodeID
	Share res.CPU
}

func (ResumeJob) isAction() {}

// String implements fmt.Stringer.
func (a ResumeJob) String() string {
	return fmt.Sprintf("resume job %s on %s @ %v", a.Job, a.Node, a.Share)
}

// SuspendJob checkpoints a running job.
type SuspendJob struct {
	Job batch.JobID
}

func (SuspendJob) isAction() {}

// String implements fmt.Stringer.
func (a SuspendJob) String() string { return fmt.Sprintf("suspend job %s", a.Job) }

// MigrateJob live-migrates a running job.
type MigrateJob struct {
	Job   batch.JobID
	Dst   cluster.NodeID
	Share res.CPU // share to set after (and during) migration
}

func (MigrateJob) isAction() {}

// String implements fmt.Stringer.
func (a MigrateJob) String() string {
	return fmt.Sprintf("migrate job %s to %s @ %v", a.Job, a.Dst, a.Share)
}

// SetJobShare adjusts a running job's CPU share.
type SetJobShare struct {
	Job   batch.JobID
	Share res.CPU
}

func (SetJobShare) isAction() {}

// String implements fmt.Stringer.
func (a SetJobShare) String() string {
	return fmt.Sprintf("set job %s share %v", a.Job, a.Share)
}

// AddInstance places a new web application instance.
type AddInstance struct {
	App   trans.AppID
	Node  cluster.NodeID
	Share res.CPU
}

func (AddInstance) isAction() {}

// String implements fmt.Stringer.
func (a AddInstance) String() string {
	return fmt.Sprintf("add instance of %s on %s @ %v", a.App, a.Node, a.Share)
}

// RemoveInstance retires a web application instance.
type RemoveInstance struct {
	App  trans.AppID
	Node cluster.NodeID
}

func (RemoveInstance) isAction() {}

// String implements fmt.Stringer.
func (a RemoveInstance) String() string {
	return fmt.Sprintf("remove instance of %s from %s", a.App, a.Node)
}

// SetInstanceShare adjusts one instance's CPU share.
type SetInstanceShare struct {
	App   trans.AppID
	Node  cluster.NodeID
	Share res.CPU
}

func (SetInstanceShare) isAction() {}

// String implements fmt.Stringer.
func (a SetInstanceShare) String() string {
	return fmt.Sprintf("set instance of %s on %s share %v", a.App, a.Node, a.Share)
}

// Plan is a controller's output: actions plus the predictions the
// experiment harness records (they become the paper's figure series).
type Plan struct {
	Actions []Action

	// HypotheticalJobUtility is the mean predicted utility across
	// incomplete jobs under the equalized allocation — the
	// "average hypothetical utility for the long-running workload"
	// plotted in the paper's Figure 1.
	HypotheticalJobUtility float64
	// ClassHypoUtility breaks the hypothetical utility down by job
	// class (used by the service-differentiation figures).
	ClassHypoUtility map[string]float64
	// EqualizedUtility is the max-min utility level of the equalization.
	EqualizedUtility float64
	// AppPrediction maps each application to its predicted utility.
	AppPrediction map[trans.AppID]float64

	// JobDemand is the CPU that would satisfy every job fully
	// (Figure 2's "long running demand").
	JobDemand res.CPU
	// AppDemand is, per application, the CPU for maximum utility
	// (Figure 2's "transactional demand").
	AppDemand map[trans.AppID]res.CPU
	// JobTarget / AppTarget are the equalized (satisfied) allocations
	// (Figure 2's "satisfied demand" series).
	JobTarget res.CPU
	AppTarget map[trans.AppID]res.CPU
}

// Controller plans placements from state snapshots. Implementations
// must be deterministic: identical states yield identical plans.
type Controller interface {
	Name() string
	Plan(st *State) *Plan
}

// CountActions tallies the plan's actions by kind — used by churn
// metrics and tests.
func (p *Plan) CountActions() (starts, resumes, suspends, migrations, reshares, instAdds, instRemoves, instShares int) {
	for _, a := range p.Actions {
		switch a.(type) {
		case StartJob:
			starts++
		case ResumeJob:
			resumes++
		case SuspendJob:
			suspends++
		case MigrateJob:
			migrations++
		case SetJobShare:
			reshares++
		case AddInstance:
			instAdds++
		case RemoveInstance:
			instRemoves++
		case SetInstanceShare:
			instShares++
		}
	}
	return
}

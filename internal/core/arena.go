package core

import (
	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/utility"
	"slaplace/internal/workload/trans"
)

// planScratch is the recycled working storage of the placement phases:
// the two node indexes (index.go) and the selection scratch buffers.
// It lives inside the per-controller planArena so index storage is
// reused across cycles; standalone contexts (newPlanContext) allocate
// one lazily on first use.
type planScratch struct {
	// pickIdx / webIdx are the job- and web-placement node indexes;
	// their bucket and heap backing arrays persist across cycles.
	pickIdx jobPickIndex
	webIdx  webPickIndex

	// evictable holds the eviction walk's candidate positions.
	evictable []int32

	// Web-placement per-app scratch: the current-instance ranking, the
	// kept-node list, the popped-candidate stack, and the kept-node set.
	webCur    []webInst
	webKept   []cluster.NodeID
	webPopped []*Ledger
	hasInst   map[cluster.NodeID]bool

	// Share-phase scratch: the per-node waterfill buffers and the
	// surplus spreader's sorted app-ID list (one of each call per node
	// per cycle).
	wfShares []res.CPU
	wfActive []int
	wfNext   []int
	webIDs   []trans.AppID
}

// planArena owns the per-cycle planning books so consecutive control
// cycles reuse one allocation instead of rebuilding Ledgers and
// PlannedJob records from scratch every 600 s. The arena is embedded in
// the PlacementController and recycled under its lock; nothing handed
// to the caller (the Plan and its actions) ever aliases arena memory.
type planArena struct {
	scratch planScratch

	// ledgers are rebuilt only when the node set changes; nodesSig is
	// the exact NodeInfo slice they were built for.
	ledgers  *Ledgers
	nodesSig []NodeInfo

	// records is the flat PlannedJob backing store; planned holds the
	// per-pass pointer view phases share.
	records []PlannedJob
	planned []*PlannedJob

	// order is the job priority-order scratch buffer.
	order []*PlannedJob

	// curve scratch: per-app curves and the combined equalizer input.
	appCurves []utility.Curve
	curves    []utility.Curve

	// jobCurveSlab is the flat JobCurve backing store (one curve per
	// job, rebuilt in place every cycle) and eqScratch the equalizer's
	// recycled working storage — together they remove the two largest
	// per-cycle allocations from the targets phase.
	jobCurveSlab []utility.JobCurve
	eqScratch    utility.EqualizeScratch

	appTarget map[trans.AppID]res.CPU
}

// grabJobCurves returns n recyclable JobCurve slots. Like grabRecords,
// recycled slots hold the previous cycle's contents and must be
// overwritten wholesale (JobCurve.Fill) before use.
func (a *planArena) grabJobCurves(n int) []utility.JobCurve {
	if cap(a.jobCurveSlab) < n {
		a.jobCurveSlab = make([]utility.JobCurve, n)
	}
	a.jobCurveSlab = a.jobCurveSlab[:n]
	return a.jobCurveSlab
}

// context opens a planning pass backed by the arena's recycled books.
// It is the allocation-free counterpart of newPlanContext.
func (a *planArena) context(st *State) *planContext {
	if a.ledgers == nil || !nodeInfosEqual(a.nodesSig, st.Nodes) {
		a.ledgers = NewLedgers(st.Nodes)
		a.nodesSig = append(a.nodesSig[:0], st.Nodes...)
	} else {
		a.ledgers.reset()
	}
	if a.appTarget == nil {
		a.appTarget = make(map[trans.AppID]res.CPU)
	} else {
		clear(a.appTarget)
	}
	return &planContext{
		st:        st,
		plan:      NewPlan(),
		ledgers:   a.ledgers,
		arena:     a,
		appTarget: a.appTarget,
		order:     a.order[:0],
		scratch:   &a.scratch,
	}
}

// grabRecords returns n PlannedJob records plus their pointer view,
// recycling the arena's backing stores. Recycled records still hold the
// previous cycle's contents: the caller must overwrite each record
// wholesale (phaseTargets assigns a full struct literal per index)
// before any field is read.
func (a *planArena) grabRecords(n int) ([]PlannedJob, []*PlannedJob) {
	if cap(a.records) < n {
		a.records = make([]PlannedJob, n)
		a.planned = make([]*PlannedJob, n)
	}
	a.records = a.records[:n]
	a.planned = a.planned[:n]
	return a.records, a.planned
}

// nodeInfosEqual reports whether two node lists are identical in
// content and order.
func nodeInfosEqual(a, b []NodeInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reset clears the per-pass ledger state so the book set can host a new
// planning pass over the same nodes.
func (ls *Ledgers) reset() {
	for _, id := range ls.order {
		l := ls.byNode[id]
		l.MemUsed = 0
		l.WebShare = 0
		l.JobCount = 0
		l.Jobs = l.Jobs[:0]
		l.index = nil
		clear(l.WebApps)
	}
}

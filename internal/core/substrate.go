package core

import (
	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// This file is the planning substrate shared by every controller: the
// per-node occupancy ledgers, the per-job planning records, and the
// plan bookkeeping helpers. The pipeline phases (pipeline.go) and the
// baseline policies (internal/baseline) both plan on these books, so
// memory/CPU accounting rules exist in exactly one place.

// PlannedJob is the planning record for one incomplete job during a
// planning pass. Phases progressively fill it in; the emission phase
// translates the final records into actions.
type PlannedJob struct {
	Info      JobInfo
	Target    res.CPU // equalized hypothetical allocation
	Node      cluster.NodeID
	Share     res.CPU // final planned share
	PlacedNew bool    // Start/Resume this cycle
	Migrate   bool    // live-migrate from Info.Node to Node
	Suspend   bool    // planned suspension (victim)
	Waiting   bool    // could not be placed

	// idx is the record's position in the snapshot's job list; the
	// controller memoizes priority orders across cycles through it.
	idx int32
	// lax is Info.Laxity(st.Now), cached once by the targets phase so
	// priority sorting and eviction probing don't recompute it per
	// comparison.
	lax float64
}

// Ledger tracks the planned occupancy of one node during a planning
// pass. MemUsed/WebShare are debited as workloads are (re)placed;
// FreeMem/FreeCPU report what remains plannable.
type Ledger struct {
	Info    NodeInfo
	MemUsed res.Memory
	// WebShare is the CPU reserved for the web tier on this node.
	WebShare res.CPU
	// JobCount counts planned jobs for policies that balance by count
	// without keeping per-job records (the baselines).
	JobCount int
	// Jobs are the per-job planning records the pipeline keeps (the
	// baselines leave it nil and use JobCount instead).
	Jobs []*PlannedJob
	// WebApps is the planned per-application web share on this node.
	WebApps map[trans.AppID]res.CPU

	// pos is the node's position in Ledgers.order (the scan tie-break
	// the job-placement index must reproduce). Set once by NewLedgers.
	pos int32
	// index, when non-nil, is the phase-local node index notified on
	// every occupancy mutation (index.go). heapPos/bucket are its
	// bookkeeping: the ledger's position inside the index structure.
	index   ledgerIndex
	heapPos int32
	bucket  int32
}

// touch notifies the attached node index, if any, of an occupancy
// change. Every mutation of MemUsed or Jobs must go through a hooked
// method (Occupy/Release/AddJob/RemoveJob/AppendJob/BookMem) or the
// phase indexes would silently diverge from the books.
func (l *Ledger) touch() {
	if l.index != nil {
		l.index.ledgerChanged(l)
	}
}

// FreeMem is the memory still plannable on this node.
func (l *Ledger) FreeMem() res.Memory { return l.Info.Mem - l.MemUsed }

// FreeCPU is the CPU power not reserved for the web tier.
func (l *Ledger) FreeCPU() res.CPU { return l.Info.CPU - l.WebShare }

// Occupy books a job's residency — memory and job count — on this
// node. Every policy must debit occupancy through Occupy/Release so
// the two balance signals (JobCount and memory) never diverge.
func (l *Ledger) Occupy(j JobInfo) {
	l.MemUsed += j.Mem
	l.JobCount++
	l.touch()
}

// Release undoes Occupy (eviction, preemption, migration away).
func (l *Ledger) Release(j JobInfo) {
	l.MemUsed -= j.Mem
	l.JobCount--
	l.touch()
}

// AddJob records a job as planned onto this node: residency plus the
// per-job planning record.
func (l *Ledger) AddJob(pj *PlannedJob) {
	l.MemUsed += pj.Info.Mem
	l.JobCount++
	l.Jobs = append(l.Jobs, pj)
	l.touch()
}

// AppendJob records the planning record of a job whose residency is
// already on the books (running jobs seeded by the targets phase).
func (l *Ledger) AppendJob(pj *PlannedJob) {
	l.Jobs = append(l.Jobs, pj)
	l.touch()
}

// RemoveJob undoes AddJob (used by the rebalance phase when a job
// moves between ledgers).
func (l *Ledger) RemoveJob(pj *PlannedJob) {
	for i, other := range l.Jobs {
		if other == pj {
			l.Jobs = append(l.Jobs[:i], l.Jobs[i+1:]...)
			break
		}
	}
	l.MemUsed -= pj.Info.Mem
	l.JobCount--
	l.touch()
}

// BookMem debits plannable memory without a job record — web instance
// residency. Like all occupancy mutations it keeps any attached node
// index consistent.
func (l *Ledger) BookMem(m res.Memory) {
	l.MemUsed += m
	l.touch()
}

// Ledgers is the book set for one planning pass: one Ledger per node,
// plus the deterministic iteration order every phase must use (map
// iteration order would break plan determinism).
type Ledgers struct {
	byNode map[cluster.NodeID]*Ledger
	order  []cluster.NodeID
}

// NewLedgers opens empty books over the given nodes (a subset of the
// cluster is fine: the Static baseline partitions this way).
func NewLedgers(nodes []NodeInfo) *Ledgers {
	ls := &Ledgers{
		byNode: make(map[cluster.NodeID]*Ledger, len(nodes)),
		order:  make([]cluster.NodeID, 0, len(nodes)),
	}
	for i, n := range nodes {
		ls.byNode[n.ID] = &Ledger{Info: n, WebApps: make(map[trans.AppID]res.CPU), pos: int32(i)}
		ls.order = append(ls.order, n.ID)
	}
	return ls
}

// Get returns the ledger for a node, or (nil, false) when the node is
// outside this book set (offline, or in another partition).
func (ls *Ledgers) Get(id cluster.NodeID) (*Ledger, bool) {
	l, ok := ls.byNode[id]
	return l, ok
}

// Order returns the deterministic node iteration order.
func (ls *Ledgers) Order() []cluster.NodeID { return ls.order }

// Each calls f for every ledger in deterministic order.
func (ls *Ledgers) Each(f func(*Ledger)) {
	for _, id := range ls.order {
		f(ls.byNode[id])
	}
}

// SeedRunning accounts the memory (and job count) of already-running
// jobs hosted on this book set's nodes. Every policy must seed before
// reserving web capacity or placing jobs, or it will plan into
// occupied memory.
func (ls *Ledgers) SeedRunning(st *State) {
	for i := range st.Jobs {
		j := &st.Jobs[i]
		if j.State != batch.Running {
			continue
		}
		if l, ok := ls.byNode[j.Node]; ok {
			l.Occupy(*j)
		}
	}
}

// NewPlan allocates an empty plan with its prediction maps ready.
func NewPlan() *Plan {
	return &Plan{
		AppPrediction: make(map[trans.AppID]float64),
		AppDemand:     make(map[trans.AppID]res.CPU),
		AppTarget:     make(map[trans.AppID]res.CPU),
	}
}

// RecordJobUtility fills the plan's hypothetical-utility and demand
// diagnostics from the granted per-job shares, so every controller
// reports on the same axes as the paper's figures.
func RecordJobUtility(st *State, plan *Plan, jobShare map[batch.JobID]res.CPU) {
	var utilSum float64
	classSum := map[string]float64{}
	classN := map[string]int{}
	for i := range st.Jobs {
		j := &st.Jobs[i]
		curve := j.Curve(st.Now)
		plan.JobDemand += curve.MaxUseful()
		share := jobShare[j.ID]
		u := curve.UtilityAt(share)
		utilSum += u
		classSum[j.Class] += u
		classN[j.Class]++
		plan.JobTarget += share
	}
	if len(st.Jobs) > 0 {
		plan.HypotheticalJobUtility = utilSum / float64(len(st.Jobs))
		plan.ClassHypoUtility = make(map[string]float64, len(classSum))
		for class, sum := range classSum {
			plan.ClassHypoUtility[class] = sum / float64(classN[class])
		}
	}
}

package core

import (
	"fmt"
	"sync"
)

// Config tunes the placement controller. The zero value is NOT valid;
// use DefaultConfig as the base.
type Config struct {
	// ShareTolerance suppresses share-change actions smaller than this
	// fraction of the workload's speed cap, damping oscillation.
	ShareTolerance float64
	// MigrationThreshold: a running job achieving less than this
	// fraction of its target share on its current node is considered
	// for migration to a better node.
	MigrationThreshold float64
	// MigrationGain: a migration must improve the job's share by at
	// least this factor to be worth the copy cost.
	MigrationGain float64
	// MaxMigrationsPerCycle bounds migration churn per control cycle.
	MaxMigrationsPerCycle int
	// EvictionMargin is suspension hysteresis in seconds of laxity: a
	// running job is only suspended for a waiting one when the waiting
	// job is at least this much more urgent. Zero reproduces the
	// paper's pure policy; larger values trade equalization granularity
	// for fewer suspend/resume cycles.
	EvictionMargin float64
	// ChurnAware keeps running jobs where they are when possible. The
	// ablation benchmark sets it false: every cycle places from
	// scratch, exposing the cost of ignoring placement inertia.
	ChurnAware bool
	// Incremental enables cycle-over-cycle plan reuse (incremental.go):
	// the controller memoizes the previous snapshot, plan and priority
	// order, replays the plan for identical snapshots, and carries the
	// placement over wholesale when the delta provably cannot change
	// it. Plans are byte-identical with it on or off — only the
	// planning cost changes. False runs every cycle from scratch (the
	// reference semantics, used by equivalence tests and benchmarks).
	Incremental bool
}

// DefaultConfig returns the configuration used in the paper-scenario
// experiments.
func DefaultConfig() Config {
	return Config{
		ShareTolerance:        0.02,
		MigrationThreshold:    0.5,
		MigrationGain:         1.5,
		MaxMigrationsPerCycle: 5,
		ChurnAware:            true,
		Incremental:           true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ShareTolerance < 0 || c.ShareTolerance > 1 {
		return fmt.Errorf("core: ShareTolerance %v outside [0,1]", c.ShareTolerance)
	}
	if c.MigrationThreshold < 0 || c.MigrationThreshold > 1 {
		return fmt.Errorf("core: MigrationThreshold %v outside [0,1]", c.MigrationThreshold)
	}
	if c.MigrationGain < 1 {
		return fmt.Errorf("core: MigrationGain %v < 1", c.MigrationGain)
	}
	if c.MaxMigrationsPerCycle < 0 {
		return fmt.Errorf("core: negative MaxMigrationsPerCycle %d", c.MaxMigrationsPerCycle)
	}
	if c.EvictionMargin < 0 {
		return fmt.Errorf("core: negative EvictionMargin %v", c.EvictionMargin)
	}
	return nil
}

// PlacementController is the paper's utility-driven placement
// controller, implemented as the staged pipeline in pipeline.go with
// the incremental re-planning tiers of incremental.go. It carries
// per-cycle state (the allocation arena and the previous-cycle memo),
// so concurrent Plan calls serialize on an internal lock; parallel
// scenario runs should each own a controller.
type PlacementController struct {
	mu    sync.Mutex
	cfg   Config
	arena planArena
	memo  *planMemo
	stats PlanStats
}

var _ Controller = (*PlacementController)(nil)
var _ PlanStatsProvider = (*PlacementController)(nil)

// New builds a controller, panicking on invalid configuration (it is a
// programming error, caught in tests).
func New(cfg Config) *PlacementController {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &PlacementController{cfg: cfg}
}

// Name implements Controller.
func (c *PlacementController) Name() string { return "utility-placement" }

package core

import (
	"fmt"
	"math"
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/utility"
	"slaplace/internal/workload/batch"
	"slaplace/internal/workload/trans"
)

// Config tunes the placement controller. The zero value is NOT valid;
// use DefaultConfig as the base.
type Config struct {
	// ShareTolerance suppresses share-change actions smaller than this
	// fraction of the workload's speed cap, damping oscillation.
	ShareTolerance float64
	// MigrationThreshold: a running job achieving less than this
	// fraction of its target share on its current node is considered
	// for migration to a better node.
	MigrationThreshold float64
	// MigrationGain: a migration must improve the job's share by at
	// least this factor to be worth the copy cost.
	MigrationGain float64
	// MaxMigrationsPerCycle bounds migration churn per control cycle.
	MaxMigrationsPerCycle int
	// EvictionMargin is suspension hysteresis in seconds of laxity: a
	// running job is only suspended for a waiting one when the waiting
	// job is at least this much more urgent. Zero reproduces the
	// paper's pure policy; larger values trade equalization granularity
	// for fewer suspend/resume cycles.
	EvictionMargin float64
	// ChurnAware keeps running jobs where they are when possible. The
	// ablation benchmark sets it false: every cycle places from
	// scratch, exposing the cost of ignoring placement inertia.
	ChurnAware bool
}

// DefaultConfig returns the configuration used in the paper-scenario
// experiments.
func DefaultConfig() Config {
	return Config{
		ShareTolerance:        0.02,
		MigrationThreshold:    0.5,
		MigrationGain:         1.5,
		MaxMigrationsPerCycle: 5,
		ChurnAware:            true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ShareTolerance < 0 || c.ShareTolerance > 1 {
		return fmt.Errorf("core: ShareTolerance %v outside [0,1]", c.ShareTolerance)
	}
	if c.MigrationThreshold < 0 || c.MigrationThreshold > 1 {
		return fmt.Errorf("core: MigrationThreshold %v outside [0,1]", c.MigrationThreshold)
	}
	if c.MigrationGain < 1 {
		return fmt.Errorf("core: MigrationGain %v < 1", c.MigrationGain)
	}
	if c.MaxMigrationsPerCycle < 0 {
		return fmt.Errorf("core: negative MaxMigrationsPerCycle %d", c.MaxMigrationsPerCycle)
	}
	if c.EvictionMargin < 0 {
		return fmt.Errorf("core: negative EvictionMargin %v", c.EvictionMargin)
	}
	return nil
}

// PlacementController is the paper's utility-driven placement
// controller.
type PlacementController struct {
	cfg Config
}

var _ Controller = (*PlacementController)(nil)

// New builds a controller, panicking on invalid configuration (it is a
// programming error, caught in tests).
func New(cfg Config) *PlacementController {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &PlacementController{cfg: cfg}
}

// Name implements Controller.
func (c *PlacementController) Name() string { return "utility-placement" }

// ledger tracks planned occupancy of one node during a planning pass.
type ledger struct {
	info     NodeInfo
	memUsed  res.Memory
	webShare res.CPU                 // planned web share (reserved)
	jobs     []*plannedJob           // jobs planned to run here
	webApps  map[trans.AppID]res.CPU // planned instance share per app
}

func (l *ledger) freeMem() res.Memory { return l.info.Mem - l.memUsed }

// plannedJob is the planning record for one incomplete job.
type plannedJob struct {
	info      JobInfo
	target    res.CPU // equalized hypothetical allocation
	node      cluster.NodeID
	share     res.CPU // final planned share
	placedNew bool    // Start/Resume this cycle
	migrate   bool    // live-migrate from info.Node to node
	suspend   bool    // planned suspension (victim)
	waiting   bool    // could not be placed
}

// Plan implements Controller. See the package comment for the phases.
func (c *PlacementController) Plan(st *State) *Plan {
	plan := &Plan{
		AppPrediction: make(map[trans.AppID]float64),
		AppDemand:     make(map[trans.AppID]res.CPU),
		AppTarget:     make(map[trans.AppID]res.CPU),
	}

	// ---- Phase 1: curves + hypothetical-utility equalization.
	appCurves := make([]utility.Curve, len(st.Apps))
	for i := range st.Apps {
		appCurves[i] = st.Apps[i].Curve()
	}
	jobCurves := make([]utility.Curve, len(st.Jobs))
	for i := range st.Jobs {
		jobCurves[i] = st.Jobs[i].Curve(st.Now)
	}
	all := append(append([]utility.Curve{}, appCurves...), jobCurves...)
	eq := utility.Equalize(all, st.TotalCPU())
	plan.EqualizedUtility = eq.Equalized

	appTarget := make(map[trans.AppID]res.CPU, len(st.Apps))
	for i := range st.Apps {
		appTarget[st.Apps[i].ID] = eq.Shares[i].Alloc
		plan.AppDemand[st.Apps[i].ID] = appCurves[i].MaxUseful()
	}
	jobTarget := make(map[batch.JobID]res.CPU, len(st.Jobs))
	var jobUtilSum float64
	classSum := map[string]float64{}
	classN := map[string]int{}
	for i := range st.Jobs {
		sh := eq.Shares[len(st.Apps)+i]
		jobTarget[st.Jobs[i].ID] = sh.Alloc
		jobUtilSum += sh.Utility
		classSum[st.Jobs[i].Class] += sh.Utility
		classN[st.Jobs[i].Class]++
		plan.JobDemand += jobCurves[i].MaxUseful()
	}
	if len(st.Jobs) > 0 {
		plan.HypotheticalJobUtility = jobUtilSum / float64(len(st.Jobs))
		plan.ClassHypoUtility = make(map[string]float64, len(classSum))
		for class, sum := range classSum {
			plan.ClassHypoUtility[class] = sum / float64(classN[class])
		}
	}

	// ---- Phase 2: planning ledger seeded with running jobs' residency.
	ledgers := make(map[cluster.NodeID]*ledger, len(st.Nodes))
	nodeOrder := make([]cluster.NodeID, 0, len(st.Nodes))
	for _, n := range st.Nodes {
		ledgers[n.ID] = &ledger{info: n, webApps: make(map[trans.AppID]res.CPU)}
		nodeOrder = append(nodeOrder, n.ID)
	}
	planned := make([]*plannedJob, len(st.Jobs))
	for i := range st.Jobs {
		pj := &plannedJob{info: st.Jobs[i], target: jobTarget[st.Jobs[i].ID]}
		planned[i] = pj
		if pj.info.State == batch.Running {
			l, ok := ledgers[pj.info.Node]
			if !ok {
				// The hosting node vanished from the snapshot (offline
				// or failed). Recovery is the eviction path's job — the
				// vm manager suspends residents and the next snapshot
				// shows the job Suspended. Until then leave it alone.
				pj.waiting = true
				continue
			}
			l.memUsed += pj.info.Mem
			pj.node = pj.info.Node
		}
	}

	// ---- Phase 3: web instance planning (presence + reserved share).
	c.planInstances(st, plan, ledgers, nodeOrder, appTarget)

	// ---- Phase 4: job run-set and placement under memory constraints.
	c.placeJobs(st, planned, ledgers, nodeOrder)

	// ---- Phase 5: per-node CPU division and share fix-up.
	c.assignShares(st, plan, planned, ledgers, nodeOrder)

	// ---- Phase 6: emit job actions from the planning records.
	c.emitJobActions(plan, planned)

	// Predictions for the recorder.
	for i := range st.Apps {
		id := st.Apps[i].ID
		plan.AppPrediction[id] = appCurves[i].UtilityAt(plan.AppTarget[id])
	}
	for _, pj := range planned {
		plan.JobTarget += pj.share
	}
	return plan
}

// planInstances decides instance presence and the reserved web share
// per node, emitting Add/Remove/SetInstanceShare actions.
func (c *PlacementController) planInstances(st *State, plan *Plan, ledgers map[cluster.NodeID]*ledger, nodeOrder []cluster.NodeID, appTarget map[trans.AppID]res.CPU) {
	for ai := range st.Apps {
		app := &st.Apps[ai]
		target := appTarget[app.ID]

		// Desired instance count.
		needed := 0
		if app.MaxPerInstance > 0 {
			needed = int(math.Ceil(float64(target) / float64(app.MaxPerInstance)))
		}
		if needed < app.MinInstances {
			needed = app.MinInstances
		}
		if needed < 1 && target > 0 {
			needed = 1
		}
		if app.MaxInstances > 0 && needed > app.MaxInstances {
			needed = app.MaxInstances
		}
		if needed > len(nodeOrder) {
			needed = len(nodeOrder)
		}

		// Keep current instances, highest-share first.
		type inst struct {
			node  cluster.NodeID
			share res.CPU
		}
		var current []inst
		for n, s := range app.Instances {
			if _, ok := ledgers[n]; !ok {
				continue // node offline; instance is already gone
			}
			current = append(current, inst{n, s})
		}
		sort.Slice(current, func(i, j int) bool {
			if current[i].share != current[j].share {
				return current[i].share > current[j].share
			}
			return current[i].node < current[j].node
		})

		kept := make([]cluster.NodeID, 0, needed)
		for _, in := range current {
			if len(kept) < needed {
				kept = append(kept, in.node)
			} else {
				plan.Actions = append(plan.Actions, RemoveInstance{App: app.ID, Node: in.node})
			}
		}
		// Account kept instances' memory (they are resident already, so
		// this mirrors reality rather than reserving anew — the ledger
		// starts empty for web, unlike for running jobs, so add it).
		for _, n := range kept {
			ledgers[n].memUsed += app.InstanceMem
		}
		// Add instances on the emptiest feasible nodes.
		if len(kept) < needed {
			hasInst := make(map[cluster.NodeID]bool, len(kept))
			for _, n := range kept {
				hasInst[n] = true
			}
			cands := make([]cluster.NodeID, 0, len(nodeOrder))
			for _, n := range nodeOrder {
				if !hasInst[n] && ledgers[n].freeMem() >= app.InstanceMem {
					cands = append(cands, n)
				}
			}
			sort.SliceStable(cands, func(i, j int) bool {
				li, lj := ledgers[cands[i]], ledgers[cands[j]]
				if li.freeMem() != lj.freeMem() {
					return li.freeMem() > lj.freeMem()
				}
				return cands[i] < cands[j]
			})
			for _, n := range cands {
				if len(kept) >= needed {
					break
				}
				kept = append(kept, n)
				ledgers[n].memUsed += app.InstanceMem
				plan.Actions = append(plan.Actions, AddInstance{App: app.ID, Node: n})
			}
		}
		if len(kept) == 0 {
			plan.AppTarget[app.ID] = 0
			continue
		}
		// Equal split of the target, capped per instance.
		per := res.Min(target/res.CPU(len(kept)), app.MaxPerInstance)
		for _, n := range kept {
			l := ledgers[n]
			share := res.Min(per, l.info.CPU)
			l.webShare += share
			l.webApps[app.ID] += share
		}
	}
}

// jobLess orders jobs for placement: least laxity (most urgent) first;
// running jobs win ties (placement inertia); then submission order.
func jobLess(now float64) func(a, b *plannedJob) bool {
	return func(a, b *plannedJob) bool {
		la, lb := a.info.Laxity(now), b.info.Laxity(now)
		if la != lb {
			return la < lb
		}
		ra, rb := a.info.State == batch.Running, b.info.State == batch.Running
		if ra != rb {
			return ra
		}
		if a.info.Submitted != b.info.Submitted {
			return a.info.Submitted < b.info.Submitted
		}
		return a.info.ID < b.info.ID
	}
}

// placeJobs fixes the run-set: which jobs run where, who gets
// suspended, who waits.
func (c *PlacementController) placeJobs(st *State, planned []*plannedJob, ledgers map[cluster.NodeID]*ledger, nodeOrder []cluster.NodeID) {
	order := append([]*plannedJob{}, planned...)
	less := jobLess(st.Now)
	sort.SliceStable(order, func(i, j int) bool { return less(order[i], order[j]) })

	for idx, pj := range order {
		switch {
		case pj.suspend, pj.waiting:
			// Victim of a more urgent job, or stranded on a vanished
			// node awaiting eviction; either way not placeable now.
			continue
		case pj.info.State == batch.Running && (c.cfg.ChurnAware || pj.info.Migrating):
			// Keep in place; migrations only through the bounded
			// rebalance pass.
			l := ledgers[pj.node]
			l.jobs = append(l.jobs, pj)
		case pj.info.State == batch.Running:
			// Churn-oblivious ablation: re-pick the node from scratch
			// and migrate whenever the choice differs.
			src := ledgers[pj.node]
			src.memUsed -= pj.info.Mem
			node := c.pickNode(pj, ledgers, nodeOrder)
			if node == "" || node == pj.info.Node {
				node = pj.info.Node
			} else {
				pj.migrate = true
			}
			pj.node = node
			l := ledgers[node]
			l.memUsed += pj.info.Mem
			l.jobs = append(l.jobs, pj)
		default: // Pending or Suspended: place if memory allows.
			node := c.pickNode(pj, ledgers, nodeOrder)
			if node == "" {
				// Try suspending the least urgent unconfirmed running
				// job to make room.
				node = c.evictVictim(st, pj, order[idx+1:], ledgers)
			}
			if node == "" {
				pj.waiting = true
				continue
			}
			l := ledgers[node]
			l.memUsed += pj.info.Mem
			l.jobs = append(l.jobs, pj)
			pj.node = node
			pj.placedNew = true
		}
	}
}

// pickNode selects the node for a new placement: feasible memory,
// fewest planned jobs (count balance), then most free memory, then
// node order. Returns "" when nothing fits.
func (c *PlacementController) pickNode(pj *plannedJob, ledgers map[cluster.NodeID]*ledger, nodeOrder []cluster.NodeID) cluster.NodeID {
	var best cluster.NodeID
	bestJobs := math.MaxInt
	var bestFree res.Memory = -1
	for _, n := range nodeOrder {
		l := ledgers[n]
		if l.freeMem() < pj.info.Mem {
			continue
		}
		nj := len(l.jobs)
		free := l.freeMem()
		if nj < bestJobs || (nj == bestJobs && free > bestFree) {
			best, bestJobs, bestFree = n, nj, free
		}
	}
	return best
}

// evictVictim suspends the least urgent not-yet-confirmed running job
// whose departure lets pj fit on its node, subject to the eviction
// hysteresis margin. rest is the tail of the priority order (strictly
// less urgent jobs). Returns the freed node, or "".
func (c *PlacementController) evictVictim(st *State, pj *plannedJob, rest []*plannedJob, ledgers map[cluster.NodeID]*ledger) cluster.NodeID {
	candLax := pj.info.Laxity(st.Now)
	// Walk the tail from the least urgent end.
	for i := len(rest) - 1; i >= 0; i-- {
		victim := rest[i]
		if victim.info.State != batch.Running || victim.suspend {
			continue
		}
		if candLax > victim.info.Laxity(st.Now)-c.cfg.EvictionMargin {
			// Not enough urgency advantage to justify a suspend/resume
			// round trip; later victims are even more urgent, stop.
			return ""
		}
		l := ledgers[victim.node]
		if l.freeMem()+victim.info.Mem < pj.info.Mem {
			continue
		}
		victim.suspend = true
		l.memUsed -= victim.info.Mem
		return victim.node
	}
	return ""
}

// assignShares divides each node's CPU between its reserved web share
// and its planned jobs (waterfill up to each job's cap), then feeds any
// surplus back to the web instances, and finally settles the migration
// rebalance pass.
func (c *PlacementController) assignShares(st *State, plan *Plan, planned []*plannedJob, ledgers map[cluster.NodeID]*ledger, nodeOrder []cluster.NodeID) {
	// Track each app's planned total so surplus feeding never pushes an
	// app beyond its maximum useful demand (extra CPU there is wasted).
	appAlloc := make(map[trans.AppID]res.CPU)
	for _, n := range nodeOrder {
		for id, s := range ledgers[n].webApps {
			appAlloc[id] += s
		}
	}
	for _, n := range nodeOrder {
		l := ledgers[n]
		available := l.info.CPU - l.webShare
		if available < 0 {
			available = 0
		}
		shares := waterfillJobs(l.jobs, available)
		var used res.CPU
		for i, pj := range l.jobs {
			pj.share = shares[i]
			used += shares[i]
		}
		// Surplus back to this node's web instances (up to per-instance
		// caps and app demand): jobs all capped and CPU remains.
		surplus := available - used
		if surplus > 0 && len(l.webApps) > 0 {
			c.spreadWebSurplus(st, plan, l, surplus, appAlloc)
		}
	}

	// Migration rebalance: running jobs starving on a crowded node move
	// to nodes that can host them with materially better shares.
	if c.cfg.MaxMigrationsPerCycle > 0 {
		c.rebalance(st, planned, ledgers, nodeOrder)
	}

	// Final web share accounting per app.
	for _, n := range nodeOrder {
		l := ledgers[n]
		for id, s := range l.webApps {
			plan.AppTarget[id] += s
		}
	}
	// Emit web share-change actions.
	c.emitWebShares(st, plan, ledgers)
}

// waterfillJobs divides capacity among jobs, each capped at its target
// ceiling: the job's max speed (a running job may receive more than its
// hypothetical target because only placed jobs can use real CPU).
func waterfillJobs(jobs []*plannedJob, capacity res.CPU) []res.CPU {
	shares := make([]res.CPU, len(jobs))
	if len(jobs) == 0 || capacity <= 0 {
		return shares
	}
	remaining := capacity
	active := make([]int, 0, len(jobs))
	for i := range jobs {
		active = append(active, i)
	}
	for len(active) > 0 && remaining > 1e-9 {
		per := remaining / res.CPU(len(active))
		var next []int
		var handed res.CPU
		for _, i := range active {
			speedCap := jobs[i].info.MaxSpeed
			want := speedCap - shares[i]
			if want <= per {
				shares[i] = speedCap
				handed += want
			} else {
				shares[i] += per
				handed += per
				next = append(next, i)
			}
		}
		remaining -= handed
		if len(next) == len(active) {
			break // nobody capped; equal split is final
		}
		active = next
	}
	return shares
}

// spreadWebSurplus gives a node's leftover CPU to its web instances,
// proportionally to their planned shares, capped per instance and by
// each app's remaining useful demand.
func (c *PlacementController) spreadWebSurplus(st *State, plan *Plan, l *ledger, surplus res.CPU, appAlloc map[trans.AppID]res.CPU) {
	// Deterministic app order.
	ids := make([]trans.AppID, 0, len(l.webApps))
	for id := range l.webApps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var totalShare res.CPU
	for _, id := range ids {
		totalShare += l.webApps[id]
	}
	for _, id := range ids {
		if surplus <= 0 {
			break
		}
		var instCap res.CPU
		for ai := range st.Apps {
			if st.Apps[ai].ID == id {
				instCap = st.Apps[ai].MaxPerInstance
				break
			}
		}
		cur := l.webApps[id]
		frac := res.CPU(1)
		if totalShare > 0 {
			frac = cur / totalShare
		} else {
			frac = res.CPU(1) / res.CPU(len(ids))
		}
		grant := res.Min(surplus*frac, instCap-cur)
		if gap := plan.AppDemand[id] - appAlloc[id]; grant > gap {
			grant = gap
		}
		if grant < 0 {
			grant = 0
		}
		l.webApps[id] = cur + grant
		l.webShare += grant
		appAlloc[id] += grant
		surplus -= grant
	}
}

// rebalance plans live migrations for running jobs whose share on their
// node falls far below target while another node could do much better.
func (c *PlacementController) rebalance(st *State, planned []*plannedJob, ledgers map[cluster.NodeID]*ledger, nodeOrder []cluster.NodeID) {
	migrations := 0
	// Most starved first: ascending share/target ratio.
	cands := make([]*plannedJob, 0, len(planned))
	for _, pj := range planned {
		if pj.info.State != batch.Running || pj.suspend || pj.waiting || pj.placedNew || pj.info.Migrating {
			continue
		}
		want := res.Min(pj.target, pj.info.MaxSpeed)
		if want <= 0 {
			continue
		}
		if pj.share < res.CPU(c.cfg.MigrationThreshold)*want {
			cands = append(cands, pj)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		ri := float64(cands[i].share) / float64(res.Min(cands[i].target, cands[i].info.MaxSpeed))
		rj := float64(cands[j].share) / float64(res.Min(cands[j].target, cands[j].info.MaxSpeed))
		if ri != rj {
			return ri < rj
		}
		return cands[i].info.ID < cands[j].info.ID
	})
	for _, pj := range cands {
		if migrations >= c.cfg.MaxMigrationsPerCycle {
			break
		}
		var best cluster.NodeID
		var bestShare res.CPU
		for _, n := range nodeOrder {
			if n == pj.node {
				continue
			}
			l := ledgers[n]
			if l.freeMem() < pj.info.Mem {
				continue
			}
			avail := l.info.CPU - l.webShare
			var jobsShare res.CPU
			for _, other := range l.jobs {
				jobsShare += other.share
			}
			projected := res.Min(avail-jobsShare, pj.info.MaxSpeed)
			if projected > bestShare {
				best, bestShare = n, projected
			}
		}
		if best == "" || float64(bestShare) < c.cfg.MigrationGain*float64(pj.share) {
			continue
		}
		src := ledgers[pj.node]
		// Remove from the source ledger.
		for i, other := range src.jobs {
			if other == pj {
				src.jobs = append(src.jobs[:i], src.jobs[i+1:]...)
				break
			}
		}
		src.memUsed -= pj.info.Mem
		dst := ledgers[best]
		dst.memUsed += pj.info.Mem
		dst.jobs = append(dst.jobs, pj)
		pj.migrate = true
		pj.node = best
		pj.share = bestShare
		migrations++
	}
}

// emitWebShares emits SetInstanceShare for kept instances whose planned
// share moved beyond tolerance, and sets shares on newly added ones by
// rewriting their AddInstance actions.
func (c *PlacementController) emitWebShares(st *State, plan *Plan, ledgers map[cluster.NodeID]*ledger) {
	// Index planned shares: app -> node -> share.
	plannedShare := make(map[trans.AppID]map[cluster.NodeID]res.CPU)
	for n, l := range ledgers {
		for id, s := range l.webApps {
			if plannedShare[id] == nil {
				plannedShare[id] = make(map[cluster.NodeID]res.CPU)
			}
			plannedShare[id][n] = s
		}
	}
	// Rewrite AddInstance actions with final shares.
	for i, a := range plan.Actions {
		if add, ok := a.(AddInstance); ok {
			add.Share = plannedShare[add.App][add.Node]
			plan.Actions[i] = add
		}
	}
	// Share changes for kept instances.
	for ai := range st.Apps {
		app := &st.Apps[ai]
		nodes := app.InstanceNodes()
		for _, n := range nodes {
			target, ok := plannedShare[app.ID][n]
			if !ok {
				continue // removed this cycle
			}
			cur := app.Instances[n]
			tol := res.CPU(c.cfg.ShareTolerance) * app.MaxPerInstance
			if res.CPU(math.Abs(float64(target-cur))) > tol {
				plan.Actions = append(plan.Actions, SetInstanceShare{App: app.ID, Node: n, Share: target})
			}
		}
	}
}

// emitJobActions translates planning records into the action list.
func (c *PlacementController) emitJobActions(plan *Plan, planned []*plannedJob) {
	// Suspends first: the executor frees memory before filling it.
	for _, pj := range planned {
		if pj.suspend {
			plan.Actions = append(plan.Actions, SuspendJob{Job: pj.info.ID})
		}
	}
	for _, pj := range planned {
		switch {
		case pj.suspend, pj.waiting:
			// No placement this cycle.
		case pj.placedNew && pj.info.State == batch.Pending:
			plan.Actions = append(plan.Actions, StartJob{Job: pj.info.ID, Node: pj.node, Share: pj.share})
		case pj.placedNew && pj.info.State == batch.Suspended:
			plan.Actions = append(plan.Actions, ResumeJob{Job: pj.info.ID, Node: pj.node, Share: pj.share})
		case pj.migrate:
			plan.Actions = append(plan.Actions, MigrateJob{Job: pj.info.ID, Dst: pj.node, Share: pj.share})
		case pj.info.State == batch.Running:
			tol := res.CPU(c.cfg.ShareTolerance) * pj.info.MaxSpeed
			if res.CPU(math.Abs(float64(pj.share-pj.info.Share))) > tol {
				plan.Actions = append(plan.Actions, SetJobShare{Job: pj.info.ID, Share: pj.share})
			}
		}
	}
}

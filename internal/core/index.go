package core

import "slaplace/internal/res"

// Indexed node selection.
//
// The cold planning path used to rescan every ledger per decision:
// pickNode walked all nodes per job (O(jobs × nodes)) and
// phaseWebPlacement rebuilt and re-sorted a candidate slice per
// application. These indexes replace the scans with incrementally
// maintained heaps, attached to the ledgers for the duration of one
// phase and kept consistent by update hooks on every occupancy
// mutation (Ledger.Occupy/Release/AddJob/RemoveJob/AppendJob/BookMem).
// Selection drops to O(log nodes) per decision while remaining
// byte-identical to the scans: each index key is exactly the scan's
// selection criterion, including its tie-breaks.
//
// Lifecycle: an index is built at phase entry (O(nodes) heapify),
// detached at phase exit. The fast incremental tiers never build one —
// they make no selection decisions — so steady-state re-plans pay only
// a nil check per hook. The index backing storage recycles through the
// per-controller planArena across cycles.

// ledgerIndex observes occupancy changes on hooked ledgers so a phase's
// node index stays consistent with the books.
type ledgerIndex interface {
	ledgerChanged(l *Ledger)
}

// jobBetter is pickNode's selection criterion as a strict ordering over
// ledgers: most free memory first, then earliest node order. It ranks
// ledgers *within* one job-count bucket; the bucket id (planned job
// count) is the criterion's most significant component.
func jobBetter(a, b *Ledger) bool {
	fa, fb := a.FreeMem(), b.FreeMem()
	if fa != fb {
		return fa > fb
	}
	return a.pos < b.pos
}

// jobPickIndex indexes ledgers by pickNode's exact criterion
// (feasible memory, fewest planned jobs, most free memory, node order):
// one max-heap of ledgers per planned-job count, each heap ordered by
// jobBetter. A query scans buckets from the lowest job count and
// returns the first bucket top with enough free memory — the bucket top
// is the bucket's memory maximum, so an infeasible top proves the whole
// bucket infeasible. Updates re-sift one ledger (same bucket) or move
// it between adjacent buckets, O(log nodes) either way.
type jobPickIndex struct {
	buckets [][]*Ledger
	// lo is the lowest possibly non-empty bucket. Placement only moves
	// nodes to higher buckets, so without it every query in a
	// jobs >> nodes regime would re-walk an ever-growing empty prefix;
	// pick advances it lazily (amortized O(1)) and inserts lower it.
	lo int
}

var _ ledgerIndex = (*jobPickIndex)(nil)

// build (re)indexes the book set and attaches the index to every ledger
// so subsequent occupancy mutations keep it consistent. Call detach
// when the phase is done.
func (ix *jobPickIndex) build(ls *Ledgers) {
	for b := range ix.buckets {
		ix.buckets[b] = ix.buckets[b][:0]
	}
	maxb := -1
	for _, id := range ls.order {
		l := ls.byNode[id]
		b := len(l.Jobs)
		for len(ix.buckets) <= b {
			ix.buckets = append(ix.buckets, nil)
		}
		if b > maxb {
			maxb = b
		}
		l.bucket = int32(b)
		l.heapPos = int32(len(ix.buckets[b]))
		ix.buckets[b] = append(ix.buckets[b], l)
		l.index = ix
	}
	// Drop the empty tail a previously skewed cycle may have left, so a
	// fruitless query never walks buckets no node can currently reach.
	ix.buckets = ix.buckets[:maxb+1]
	ix.lo = 0
	for b := range ix.buckets {
		h := ix.buckets[b]
		for i := len(h)/2 - 1; i >= 0; i-- {
			jobSiftDown(h, i)
		}
	}
}

// detach unhooks the index from every ledger.
func (ix *jobPickIndex) detach(ls *Ledgers) {
	for _, id := range ls.order {
		ls.byNode[id].index = nil
	}
}

// pick returns the ledger pickNode would select for a job of the given
// memory footprint, or nil when nothing fits.
func (ix *jobPickIndex) pick(mem res.Memory) *Ledger {
	for ix.lo < len(ix.buckets) && len(ix.buckets[ix.lo]) == 0 {
		ix.lo++
	}
	for b := ix.lo; b < len(ix.buckets); b++ {
		h := ix.buckets[b]
		if len(h) > 0 && h[0].FreeMem() >= mem {
			return h[0]
		}
	}
	return nil
}

// ledgerChanged implements ledgerIndex: re-bucket on a planned-job
// count change, re-sift in place on a memory change.
func (ix *jobPickIndex) ledgerChanged(l *Ledger) {
	nb := len(l.Jobs)
	if int(l.bucket) == nb {
		h := ix.buckets[l.bucket]
		i := jobSiftUp(h, int(l.heapPos))
		jobSiftDown(h, i)
		return
	}
	// Remove from the old bucket...
	h := ix.buckets[l.bucket]
	i := int(l.heapPos)
	last := len(h) - 1
	h[i] = h[last]
	h[i].heapPos = int32(i)
	ix.buckets[l.bucket] = h[:last]
	if i < last {
		i = jobSiftUp(h[:last], i)
		jobSiftDown(h[:last], i)
	}
	// ...and push onto the new one.
	for len(ix.buckets) <= nb {
		ix.buckets = append(ix.buckets, nil)
	}
	if nb < ix.lo {
		ix.lo = nb
	}
	l.bucket = int32(nb)
	l.heapPos = int32(len(ix.buckets[nb]))
	ix.buckets[nb] = append(ix.buckets[nb], l)
	jobSiftUp(ix.buckets[nb], int(l.heapPos))
}

// ledgerOrder is a heap comparator over ledgers. The sift helpers are
// generic over it with zero-size concrete instantiations, so both
// heaps share one sift implementation without indirect calls in the
// hot loop.
type ledgerOrder interface {
	better(a, b *Ledger) bool
}

// jobOrder instantiates the sifts with jobBetter.
type jobOrder struct{}

func (jobOrder) better(a, b *Ledger) bool { return jobBetter(a, b) }

// webOrder instantiates the sifts with webBetter.
type webOrder struct{}

func (webOrder) better(a, b *Ledger) bool { return webBetter(a, b) }

// siftUp restores the heap invariant upward from i, maintaining each
// ledger's heapPos, and returns the element's final position.
func siftUp[O ledgerOrder](o O, h []*Ledger, i int) int {
	for i > 0 {
		p := (i - 1) / 2
		if !o.better(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		h[i].heapPos, h[p].heapPos = int32(i), int32(p)
		i = p
	}
	return i
}

// siftDown restores the heap invariant downward from i, maintaining
// each ledger's heapPos.
func siftDown[O ledgerOrder](o O, h []*Ledger, i int) {
	n := len(h)
	for {
		best := i
		if l := 2*i + 1; l < n && o.better(h[l], h[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && o.better(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		h[i].heapPos, h[best].heapPos = int32(i), int32(best)
		i = best
	}
}

// jobSiftUp / jobSiftDown / webSiftUp / webSiftDown are the two heaps'
// concrete instantiations.
func jobSiftUp(h []*Ledger, i int) int { return siftUp(jobOrder{}, h, i) }
func jobSiftDown(h []*Ledger, i int)   { siftDown(jobOrder{}, h, i) }
func webSiftUp(h []*Ledger, i int) int { return siftUp(webOrder{}, h, i) }
func webSiftDown(h []*Ledger, i int)   { siftDown(webOrder{}, h, i) }

// webBetter is phaseWebPlacement's candidate ordering as a strict
// ordering over ledgers: most free memory first, then node ID. (The
// web phase tie-breaks on the ID itself, not the node order — the job
// phase does the opposite; do not unify them.)
func webBetter(a, b *Ledger) bool {
	fa, fb := a.FreeMem(), b.FreeMem()
	if fa != fb {
		return fa > fb
	}
	return a.Info.ID < b.Info.ID
}

// webPickIndex is a single max-heap of every ledger ordered by
// webBetter, giving phaseWebPlacement its per-application candidate
// stream without rebuilding and re-sorting a slice per app. Popped
// ledgers are temporarily outside the heap (heapPos -1) and must be
// pushed back once the application's selection is done.
type webPickIndex struct {
	h []*Ledger
}

var _ ledgerIndex = (*webPickIndex)(nil)

// build (re)indexes the book set and attaches the index; call detach
// when the phase is done.
func (ix *webPickIndex) build(ls *Ledgers) {
	ix.h = ix.h[:0]
	for _, id := range ls.order {
		l := ls.byNode[id]
		l.heapPos = int32(len(ix.h))
		ix.h = append(ix.h, l)
		l.index = ix
	}
	for i := len(ix.h)/2 - 1; i >= 0; i-- {
		webSiftDown(ix.h, i)
	}
}

// detach unhooks the index from every ledger.
func (ix *webPickIndex) detach(ls *Ledgers) {
	for _, id := range ls.order {
		ls.byNode[id].index = nil
	}
}

// peek returns the best candidate without removing it, nil when empty.
func (ix *webPickIndex) peek() *Ledger {
	if len(ix.h) == 0 {
		return nil
	}
	return ix.h[0]
}

// popTop removes and returns the best candidate. The ledger stays
// hooked but is marked outside the heap, so mutations while popped
// (booking the instance memory) are deferred to the push.
func (ix *webPickIndex) popTop() *Ledger {
	top := ix.h[0]
	last := len(ix.h) - 1
	ix.h[0] = ix.h[last]
	ix.h[0].heapPos = 0
	ix.h = ix.h[:last]
	if last > 0 {
		webSiftDown(ix.h, 0)
	}
	top.heapPos = -1
	return top
}

// push re-inserts a popped ledger under its current key.
func (ix *webPickIndex) push(l *Ledger) {
	l.heapPos = int32(len(ix.h))
	ix.h = append(ix.h, l)
	webSiftUp(ix.h, int(l.heapPos))
}

// ledgerChanged implements ledgerIndex: re-sift in place. Popped
// ledgers (heapPos -1) are fixed up by push instead.
func (ix *webPickIndex) ledgerChanged(l *Ledger) {
	if l.heapPos < 0 {
		return
	}
	i := webSiftUp(ix.h, int(l.heapPos))
	webSiftDown(ix.h, i)
}

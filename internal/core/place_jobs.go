package core

import (
	"math"
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// jobLess orders jobs for placement: least laxity (most urgent) first;
// running jobs win ties (placement inertia); then submission order.
// It reads the laxity the targets phase cached on each record (laxity
// is a pure function of the snapshot, so caching it once per cycle is
// exact while sparing every comparison two float divisions).
func jobLess(a, b *PlannedJob) bool {
	if a.lax != b.lax {
		return a.lax < b.lax
	}
	ra, rb := a.Info.State == batch.Running, b.Info.State == batch.Running
	if ra != rb {
		return ra
	}
	if a.Info.Submitted != b.Info.Submitted {
		return a.Info.Submitted < b.Info.Submitted
	}
	return a.Info.ID < b.Info.ID
}

// phaseJobPlacement fixes the run-set: which jobs run where, who gets
// suspended, who waits. Node selection goes through the jobPickIndex
// (index.go) — O(log nodes) per decision instead of a full ledger scan
// — and eviction probing through a maintained list of evictable
// positions; both are byte-identical to the reference scans
// (pickNodeScan, and the tail walk the eviction tests pin).
func (c *PlacementController) phaseJobPlacement(ctx *planContext) {
	ledgers := ctx.ledgers
	ctx.order = append(ctx.order[:0], ctx.planned...)
	order := ctx.order
	sort.SliceStable(order, func(i, j int) bool { return jobLess(order[i], order[j]) })

	sc := ctx.ensureScratch()
	pick := &sc.pickIdx
	pick.build(ledgers)
	defer pick.detach(ledgers)

	// Evictable running jobs by priority-order position, ascending.
	// evictVictim walks it from the least urgent end instead of
	// re-scanning the whole priority tail past every waiting job.
	evictable := sc.evictable[:0]
	for p, pj := range order {
		if pj.Info.State == batch.Running && !pj.Suspend && !pj.Waiting {
			evictable = append(evictable, int32(p))
		}
	}
	defer func() { sc.evictable = evictable[:0] }()

	for idx, pj := range order {
		switch {
		case pj.Suspend, pj.Waiting:
			// Victim of a more urgent job, or stranded on a vanished
			// node awaiting eviction; either way not placeable now.
			continue
		case pj.Info.State == batch.Running && (c.cfg.ChurnAware || pj.Info.Migrating):
			// Keep in place (residency already booked by the targets
			// phase); migrations only through the bounded rebalance
			// pass.
			l, _ := ledgers.Get(pj.Node)
			l.AppendJob(pj)
		case pj.Info.State == batch.Running:
			// Churn-oblivious ablation: re-pick the node from scratch
			// and migrate whenever the choice differs.
			src, _ := ledgers.Get(pj.Node)
			src.Release(pj.Info)
			var node cluster.NodeID
			best := pick.pick(pj.Info.Mem)
			if best != nil {
				node = best.Info.ID
			}
			if node == "" || node == pj.Info.Node {
				node = pj.Info.Node
				best, _ = ledgers.Get(node)
			} else {
				pj.Migrate = true
			}
			pj.Node = node
			best.AddJob(pj)
		default: // Pending or Suspended: place if memory allows.
			var node cluster.NodeID
			best := pick.pick(pj.Info.Mem)
			if best != nil {
				node = best.Info.ID
			}
			if node == "" {
				// Try suspending the least urgent unconfirmed running
				// job to make room.
				node = c.evictVictim(pj, order, idx, &evictable, ledgers)
				if node != "" {
					best, _ = ledgers.Get(node)
				}
			}
			if node == "" {
				pj.Waiting = true
				continue
			}
			best.AddJob(pj)
			pj.Node = node
			pj.PlacedNew = true
		}
	}
}

// pickNodeScan is the reference node selection: feasible memory,
// fewest planned jobs (count balance), then most free memory, then
// node order. Returns "" when nothing fits. The placement phase uses
// the equivalent jobPickIndex instead; the scan stays as the oracle
// the index equivalence tests compare against.
func pickNodeScan(pj *PlannedJob, ledgers *Ledgers, nodeOrder []cluster.NodeID) cluster.NodeID {
	var best cluster.NodeID
	bestJobs := math.MaxInt
	var bestFree res.Memory = -1
	for _, n := range nodeOrder {
		l, _ := ledgers.Get(n)
		if l.FreeMem() < pj.Info.Mem {
			continue
		}
		nj := len(l.Jobs)
		free := l.FreeMem()
		if nj < bestJobs || (nj == bestJobs && free > bestFree) {
			best, bestJobs, bestFree = n, nj, free
		}
	}
	return best
}

// evictVictim suspends the least urgent not-yet-confirmed running job
// whose departure lets pj fit on its node, subject to the eviction
// hysteresis margin. evictable lists the evictable running jobs'
// positions in the priority order, ascending; entries at or before idx
// were already confirmed in place by the main loop and are never
// probed (the old tail re-scan skipped them one by one instead).
// Returns the freed node, or "".
func (c *PlacementController) evictVictim(pj *PlannedJob, order []*PlannedJob, idx int, evictable *[]int32, ledgers *Ledgers) cluster.NodeID {
	candLax := pj.lax
	list := *evictable
	// Walk from the least urgent end.
	for i := len(list) - 1; i >= 0; i-- {
		p := int(list[i])
		if p <= idx {
			break
		}
		victim := order[p]
		if candLax > victim.lax-c.cfg.EvictionMargin {
			// Not enough urgency advantage to justify a suspend/resume
			// round trip; later victims are even more urgent, stop.
			return ""
		}
		l, _ := ledgers.Get(victim.Node)
		if l.FreeMem()+victim.Info.Mem < pj.Info.Mem {
			continue
		}
		victim.Suspend = true
		l.Release(victim.Info)
		copy(list[i:], list[i+1:])
		*evictable = list[:len(list)-1]
		return victim.Node
	}
	return ""
}

package core

import (
	"math"
	"sort"

	"slaplace/internal/cluster"
	"slaplace/internal/res"
	"slaplace/internal/workload/batch"
)

// jobLess orders jobs for placement: least laxity (most urgent) first;
// running jobs win ties (placement inertia); then submission order.
func jobLess(now float64) func(a, b *PlannedJob) bool {
	return func(a, b *PlannedJob) bool {
		la, lb := a.Info.Laxity(now), b.Info.Laxity(now)
		if la != lb {
			return la < lb
		}
		ra, rb := a.Info.State == batch.Running, b.Info.State == batch.Running
		if ra != rb {
			return ra
		}
		if a.Info.Submitted != b.Info.Submitted {
			return a.Info.Submitted < b.Info.Submitted
		}
		return a.Info.ID < b.Info.ID
	}
}

// phaseJobPlacement fixes the run-set: which jobs run where, who gets
// suspended, who waits.
func (c *PlacementController) phaseJobPlacement(ctx *planContext) {
	st, ledgers := ctx.st, ctx.ledgers
	nodeOrder := ledgers.Order()
	ctx.order = append(ctx.order[:0], ctx.planned...)
	order := ctx.order
	less := jobLess(st.Now)
	sort.SliceStable(order, func(i, j int) bool { return less(order[i], order[j]) })

	for idx, pj := range order {
		switch {
		case pj.Suspend, pj.Waiting:
			// Victim of a more urgent job, or stranded on a vanished
			// node awaiting eviction; either way not placeable now.
			continue
		case pj.Info.State == batch.Running && (c.cfg.ChurnAware || pj.Info.Migrating):
			// Keep in place (residency already booked by the targets
			// phase); migrations only through the bounded rebalance
			// pass.
			l, _ := ledgers.Get(pj.Node)
			l.Jobs = append(l.Jobs, pj)
		case pj.Info.State == batch.Running:
			// Churn-oblivious ablation: re-pick the node from scratch
			// and migrate whenever the choice differs.
			src, _ := ledgers.Get(pj.Node)
			src.Release(pj.Info)
			node := c.pickNode(pj, ledgers, nodeOrder)
			if node == "" || node == pj.Info.Node {
				node = pj.Info.Node
			} else {
				pj.Migrate = true
			}
			pj.Node = node
			l, _ := ledgers.Get(node)
			l.AddJob(pj)
		default: // Pending or Suspended: place if memory allows.
			node := c.pickNode(pj, ledgers, nodeOrder)
			if node == "" {
				// Try suspending the least urgent unconfirmed running
				// job to make room.
				node = c.evictVictim(st, pj, order[idx+1:], ledgers)
			}
			if node == "" {
				pj.Waiting = true
				continue
			}
			l, _ := ledgers.Get(node)
			l.AddJob(pj)
			pj.Node = node
			pj.PlacedNew = true
		}
	}
}

// pickNode selects the node for a new placement: feasible memory,
// fewest planned jobs (count balance), then most free memory, then
// node order. Returns "" when nothing fits.
func (c *PlacementController) pickNode(pj *PlannedJob, ledgers *Ledgers, nodeOrder []cluster.NodeID) cluster.NodeID {
	var best cluster.NodeID
	bestJobs := math.MaxInt
	var bestFree res.Memory = -1
	for _, n := range nodeOrder {
		l, _ := ledgers.Get(n)
		if l.FreeMem() < pj.Info.Mem {
			continue
		}
		nj := len(l.Jobs)
		free := l.FreeMem()
		if nj < bestJobs || (nj == bestJobs && free > bestFree) {
			best, bestJobs, bestFree = n, nj, free
		}
	}
	return best
}

// evictVictim suspends the least urgent not-yet-confirmed running job
// whose departure lets pj fit on its node, subject to the eviction
// hysteresis margin. rest is the tail of the priority order (strictly
// less urgent jobs). Returns the freed node, or "".
func (c *PlacementController) evictVictim(st *State, pj *PlannedJob, rest []*PlannedJob, ledgers *Ledgers) cluster.NodeID {
	candLax := pj.Info.Laxity(st.Now)
	// Walk the tail from the least urgent end.
	for i := len(rest) - 1; i >= 0; i-- {
		victim := rest[i]
		if victim.Info.State != batch.Running || victim.Suspend || victim.Waiting {
			// Waiting guards the stranded case: a running job whose
			// node vanished from the snapshot has no ledger to free
			// memory on (and dereferencing it would crash).
			continue
		}
		if candLax > victim.Info.Laxity(st.Now)-c.cfg.EvictionMargin {
			// Not enough urgency advantage to justify a suspend/resume
			// round trip; later victims are even more urgent, stop.
			return ""
		}
		l, _ := ledgers.Get(victim.Node)
		if l.FreeMem()+victim.Info.Mem < pj.Info.Mem {
			continue
		}
		victim.Suspend = true
		l.Release(victim.Info)
		return victim.Node
	}
	return ""
}

// Forecasting benchmarks: the per-cycle cost predictive planning adds
// to a session's plan cycle at the canonical 500-node / 5000-job
// steady shape. The reactive sub-benchmark is the baseline; the
// per-predictor ones run the identical drifting-demand cycle with
// forecasting enabled, so the gap is exactly the forecast pass
// (correction feedback, history push, predict, demand substitution).
// The benchmark gate holds the reactive/holt ratio to pin that the
// pass stays negligible next to planning itself; the per-app scaling
// of the predictors is covered by internal/forecast's own benchmark.
package slaplace_test

import (
	"fmt"
	"testing"

	"slaplace/api"
	"slaplace/internal/control"
	"slaplace/internal/core"
	"slaplace/internal/forecast"
	"slaplace/internal/queueing"
)

func BenchmarkForecast(b *testing.B) {
	const nodes, jobs = 500, 5000
	model, err := queueing.NewMG1PS(1350, 4500)
	if err != nil {
		b.Fatal(err)
	}
	for _, pred := range []string{
		"reactive",
		forecast.PredictorConstant,
		forecast.PredictorHolt,
		forecast.PredictorAR,
	} {
		b.Run(fmt.Sprintf("%s/nodes=%d/jobs=%d", pred, nodes, jobs), func(b *testing.B) {
			sess, err := control.NewSession(core.New(core.DefaultConfig()))
			if err != nil {
				b.Fatal(err)
			}
			if pred != "reactive" {
				cfg := forecast.DefaultConfig()
				cfg.Predictor = pred
				if err := sess.EnableForecast(cfg); err != nil {
					b.Fatal(err)
				}
			}
			snap, err := api.FromCoreState(steadySyntheticState(nodes, jobs, model))
			if err != nil {
				b.Fatal(err)
			}
			// Warm the session onto the carry-over tier and prime the
			// predictor windows before measuring.
			for c := 0; c < 8; c++ {
				snap.Now += 600
				snap.Apps[0].Lambda = 65 + 0.1*float64(c+1)
				if _, _, err := sess.Propose(snap); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh demand every cycle keeps these genuine re-plans,
				// never exact-snapshot replays.
				snap.Now += 600
				snap.Apps[0].Lambda = 65 + 0.1*float64(i%50+1)
				if _, _, err := sess.Propose(snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

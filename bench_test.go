// Benchmark harness: one benchmark per figure of the paper plus one
// per extension experiment (see DESIGN.md §5 and EXPERIMENTS.md).
//
// These are *reproduction* benchmarks: beyond ns/op they report the
// experiment's headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the evaluation in one
// command:
//
//	Figure 1  -> utility trough/gap metrics (equalization quality)
//	Figure 2  -> demand/allocation metrics (uneven split, full usage)
//	E4        -> gold vs silver stretch (service differentiation)
//	E5        -> per-controller max-min utility (baseline comparison)
//	E6        -> placement-controller planning cost vs cluster size
//	E7        -> migrations with/without churn-awareness
package slaplace_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"slaplace"

	"slaplace/internal/cluster"
	"slaplace/internal/core"
	"slaplace/internal/queueing"
	"slaplace/internal/res"
	"slaplace/internal/utility"
	"slaplace/internal/workload/batch"
)

// runOnce executes a scenario once per benchmark iteration.
func runOnce(b *testing.B, sc slaplace.Scenario) *slaplace.Result {
	b.Helper()
	r, err := slaplace.Run(sc)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// seriesMin returns a series minimum over [t0, t1].
func seriesMin(r *slaplace.Result, name string, t0, t1 float64) float64 {
	min := math.Inf(1)
	for _, p := range r.Recorder.Series(name).Window(t0, t1) {
		min = math.Min(min, p.V)
	}
	return min
}

// BenchmarkFigure1_UtilityEqualization regenerates the paper's
// Figure 1 (actual transactional utility vs mean hypothetical
// long-running utility over time) and reports its shape metrics:
// the utility troughs and the mean gap between the two curves during
// contention — the equalization the paper demonstrates.
func BenchmarkFigure1_UtilityEqualization(b *testing.B) {
	var r *slaplace.Result
	for i := 0; i < b.N; i++ {
		r = runOnce(b, slaplace.PaperScenario(42))
	}
	webU := r.Recorder.Series("trans/web/utility")
	jobU := r.Recorder.Series("jobs/hypoUtility")
	var gap float64
	var n int
	for _, p := range webU.Window(25000, 55000) {
		if jv, ok := jobU.ValueAt(p.T); ok {
			gap += math.Abs(p.V - jv)
			n++
		}
	}
	b.ReportMetric(webU.MeanOver(1200, 6000), "webU-early")
	b.ReportMetric(seriesMin(r, "trans/web/utility", 30000, 66000), "webU-trough")
	b.ReportMetric(seriesMin(r, "jobs/hypoUtility", 30000, 66000), "jobU-trough")
	b.ReportMetric(gap/float64(n), "utility-gap")
	b.ReportMetric(webU.MeanOver(66000, 72000), "webU-end")
}

// BenchmarkFigure2_AllocationTracksDemand regenerates Figure 2 (CPU
// power demanded vs allocated per workload) and reports: the constant
// transactional demand, the job-demand peak, and the peak share of
// cluster capacity the jobs reach — the "uneven distribution of
// resources" the paper highlights.
func BenchmarkFigure2_AllocationTracksDemand(b *testing.B) {
	var r *slaplace.Result
	for i := 0; i < b.N; i++ {
		r = runOnce(b, slaplace.PaperScenario(42))
	}
	capacity := 25.0 * 18000
	jobDemandPeak, jobAllocPeak := 0.0, 0.0
	for _, p := range r.Recorder.Series("jobs/demand").Points() {
		jobDemandPeak = math.Max(jobDemandPeak, p.V)
	}
	for _, p := range r.Recorder.Series("jobs/alloc").Points() {
		jobAllocPeak = math.Max(jobAllocPeak, p.V)
	}
	webDemand, _ := r.Recorder.Series("trans/web/demand").Last()
	webAllocMin := seriesMin(r, "trans/web/alloc", 1200, 72000)
	b.ReportMetric(webDemand.V/1000, "webDemand-GHz")
	b.ReportMetric(webAllocMin/1000, "webAllocMin-GHz")
	b.ReportMetric(jobDemandPeak/1000, "jobDemandPeak-GHz")
	b.ReportMetric(jobAllocPeak/capacity*100, "jobAllocPeak-pct")
}

// BenchmarkDiffServ regenerates E4 (service differentiation): equal
// work, different goals; gold must finish with lower stretch.
func BenchmarkDiffServ(b *testing.B) {
	var r *slaplace.Result
	for i := 0; i < b.N; i++ {
		r = runOnce(b, slaplace.DiffServScenario(42))
	}
	gold := r.ClassStats["gold"]
	silver := r.ClassStats["silver"]
	b.ReportMetric(gold.MeanStretch, "gold-stretch")
	b.ReportMetric(silver.MeanStretch, "silver-stretch")
	b.ReportMetric(float64(gold.GoalViolations+silver.GoalViolations), "violations")
}

// BenchmarkBaselines regenerates E5: the same workload trace under the
// utility controller and each baseline, reporting the max-min utility
// each policy sustains.
func BenchmarkBaselines(b *testing.B) {
	cases := []struct {
		name string
		ctrl slaplace.Controller
	}{
		{"utility", slaplace.NewController(slaplace.DefaultControllerConfig())},
		{"fcfs", slaplace.FCFS},
		{"edf", slaplace.EDF},
		{"fairshare", slaplace.FairShare},
		{"static60", slaplace.StaticPartition(0.6)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var r *slaplace.Result
			for i := 0; i < b.N; i++ {
				r = runOnce(b, slaplace.BaselineScenario(42, c.ctrl))
			}
			minU := math.Min(
				seriesMin(r, "trans/web/utility", 1200, 36000),
				seriesMin(r, "jobs/hypoUtility", 1200, 36000))
			b.ReportMetric(minU, "maxmin-utility")
			b.ReportMetric(float64(r.JobStats.Completed), "completed")
			b.ReportMetric(float64(r.JobStats.GoalViolations), "violations")
		})
	}
}

// BenchmarkChurnAblation regenerates E7: churn-aware vs churn-oblivious
// placement on identical traces; reports migration counts and job
// outcomes.
func BenchmarkChurnAblation(b *testing.B) {
	for _, aware := range []bool{true, false} {
		name := "aware"
		if !aware {
			name = "oblivious"
		}
		b.Run(name, func(b *testing.B) {
			var r *slaplace.Result
			for i := 0; i < b.N; i++ {
				r = runOnce(b, slaplace.ChurnScenario(42, aware))
			}
			b.ReportMetric(float64(r.VMCounters.Migrations), "migrations")
			b.ReportMetric(float64(r.VMCounters.Suspends), "suspends")
			b.ReportMetric(r.ClassStats["batch"].MeanCompletionUtility, "completionU")
		})
	}
}

// BenchmarkFailureRecovery regenerates the failure-injection run:
// node failures mid-run with checkpoint/replacement recovery.
func BenchmarkFailureRecovery(b *testing.B) {
	var r *slaplace.Result
	for i := 0; i < b.N; i++ {
		r = runOnce(b, slaplace.FailureScenario(42))
	}
	b.ReportMetric(float64(r.VMCounters.Evictions), "evictions")
	b.ReportMetric(float64(r.JobStats.Completed), "completed")
}

// BenchmarkSpike regenerates the load-spike experiment: how fast and
// how completely the controller re-allocates around a 3x transactional
// surge.
func BenchmarkSpike(b *testing.B) {
	var r *slaplace.Result
	for i := 0; i < b.N; i++ {
		r = runOnce(b, slaplace.SpikeScenario(42))
	}
	webAlloc := r.Recorder.Series("trans/web/alloc")
	pre := webAlloc.MeanOver(9000, 18000)
	in := webAlloc.MeanOver(20400, 25200)
	post := webAlloc.MeanOver(30000, 36000)
	b.ReportMetric(in/pre, "spike-alloc-ratio")
	b.ReportMetric(post/pre, "recovery-ratio")
	b.ReportMetric(float64(r.JobStats.Completed), "completed")
}

// BenchmarkMultiApp regenerates the three-SLA fairness experiment:
// identical traffic, SLA-ordered CPU allocations, all apps healthy.
func BenchmarkMultiApp(b *testing.B) {
	var r *slaplace.Result
	for i := 0; i < b.N; i++ {
		r = runOnce(b, slaplace.MultiAppScenario(42))
	}
	alloc := func(id string) float64 {
		return r.Recorder.Series("trans/"+id+"/alloc").MeanOver(12000, 36000)
	}
	b.ReportMetric(alloc("gold-web")/1000, "goldAlloc-GHz")
	b.ReportMetric(alloc("silver-web")/1000, "silverAlloc-GHz")
	b.ReportMetric(alloc("bronze-web")/1000, "bronzeAlloc-GHz")
}

// BenchmarkPlacementScale is E6: the placement controller's planning
// cost per control cycle as the cluster and job population grow. The
// paper's controller must run every 600 s; planning cost is what
// bounds its applicability.
//
// Two variants per shape:
//
//	cold    a from-scratch plan (Incremental off — the reference
//	        planner), on the half-loaded synthetic snapshot;
//	steady  a steady-state re-plan: the controller planned the
//	        previous cycle, and only the transactional demand drifts —
//	        the carry-over tier of core/incremental.go.
//
// The CI benchmark-regression gate (cmd/benchgate) tracks the medians
// of every sub-benchmark against BENCH_placement.json.
func BenchmarkPlacementScale(b *testing.B) {
	model, err := queueing.NewMG1PS(1350, 4500)
	if err != nil {
		b.Fatal(err)
	}
	shapes := []struct{ nodes, jobs int }{
		{10, 30}, {25, 100}, {50, 300}, {100, 800}, {200, 2000}, {500, 5000},
		{2000, 20000}, {5000, 50000},
	}
	for _, sh := range shapes {
		b.Run(fmt.Sprintf("cold/nodes=%d/jobs=%d", sh.nodes, sh.jobs), func(b *testing.B) {
			st := syntheticState(sh.nodes, sh.jobs, model)
			cfg := core.DefaultConfig()
			cfg.Incremental = false
			ctrl := core.New(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan := ctrl.Plan(st)
				if plan == nil {
					b.Fatal("nil plan")
				}
			}
		})
	}
	for _, sh := range shapes {
		if sh.nodes < 500 {
			continue // carry-over only pays off at scale; keep CI lean
		}
		b.Run(fmt.Sprintf("steady/nodes=%d/jobs=%d", sh.nodes, sh.jobs), func(b *testing.B) {
			st := steadySyntheticState(sh.nodes, sh.jobs, model)
			ctrl := core.New(core.DefaultConfig())
			ctrl.Plan(st) // previous cycle
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh demand level every iteration: measure genuine
				// carry-over re-plans, never exact-snapshot replays.
				st.Apps[0].Lambda = 65 + 0.1*float64(i%50+1)
				plan := ctrl.Plan(st)
				if plan == nil {
					b.Fatal("nil plan")
				}
			}
			b.StopTimer()
			if got := ctrl.PlanStats(); got.Incremental == 0 || got.Replayed != 0 {
				b.Fatalf("steady benchmark did not stay on the carry-over tier: %+v", got)
			}
		})
	}
}

// TestIncrementalReplanSpeedup pins the incremental planner's headline
// guarantee: at the 500-node/5000-job shape, a steady-state re-plan is
// at least 3x faster than a from-scratch plan of the same snapshot.
func TestIncrementalReplanSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("timing test; race instrumentation skews the ratio")
	}
	model, err := queueing.NewMG1PS(1350, 4500)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	st := steadySyntheticState(500, 5000, model)

	coldCfg := core.DefaultConfig()
	coldCfg.Incremental = false
	cold := core.New(coldCfg)
	cold.Plan(st) // warm caches and allocator
	coldBest := time.Duration(math.MaxInt64)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		cold.Plan(st)
		if d := time.Since(start); d < coldBest {
			coldBest = d
		}
	}

	inc := core.New(core.DefaultConfig())
	inc.Plan(st) // previous cycle
	incBest := time.Duration(math.MaxInt64)
	for i := 0; i < rounds; i++ {
		// A fresh demand level every round: each re-plan is a genuine
		// carry-over, never an exact-snapshot replay.
		st.Apps[0].Lambda = 65 + 0.1*float64(i+1)
		start := time.Now()
		inc.Plan(st)
		if d := time.Since(start); d < incBest {
			incBest = d
		}
	}
	if stats := inc.PlanStats(); stats.Incremental < rounds+1 || stats.Replayed != 0 {
		t.Fatalf("steady re-plans did not all take the carry-over tier: %+v", stats)
	}
	ratio := float64(coldBest) / float64(incBest)
	t.Logf("cold %v vs steady %v: %.1fx", coldBest, incBest, ratio)
	if ratio < 3 {
		t.Errorf("steady-state re-plan only %.2fx faster than cold (want >= 3x)", ratio)
	}

	// The speedup must not change a single byte: compare the carry-over
	// plan against the from-scratch plan at full scale.
	st.Apps[0].Lambda = 65.25
	if got, want := inc.Plan(st).Digest(), cold.Plan(st).Digest(); got != want {
		t.Errorf("incremental plan diverges from from-scratch plan at 500/5000")
	}
}

// syntheticState builds a half-loaded cluster snapshot for planning
// benchmarks: half the jobs running, half queued.
func syntheticState(nodes, jobs int, model queueing.MG1PS) *core.State {
	st := &core.State{Now: 50000}
	for i := 0; i < nodes; i++ {
		st.Nodes = append(st.Nodes, core.NodeInfo{
			ID:  cluster.NodeID(fmt.Sprintf("n%03d", i)),
			CPU: 18000,
			Mem: 16000,
		})
	}
	running := 0
	for i := 0; i < jobs; i++ {
		info := core.JobInfo{
			ID:        batch.JobID(fmt.Sprintf("j%04d", i)),
			State:     batch.Pending,
			Remaining: res.Work(4500 * float64(5000+i%20000)),
			MaxSpeed:  4500,
			Mem:       5000,
			Goal:      60000 + float64(i%40000),
			Submitted: float64(i),
		}
		if running < nodes*2 && i%2 == 0 {
			info.State = batch.Running
			info.Node = st.Nodes[running%nodes].ID
			info.Share = 4500
			running++
		}
		st.Jobs = append(st.Jobs, info)
	}
	st.Apps = []core.AppInfo{{
		ID: "web", Lambda: 65, RTGoal: 3.0, Model: model,
		InstanceMem: 1000, MaxPerInstance: 18000, MinInstances: nodes,
		Instances: map[cluster.NodeID]res.CPU{},
	}}
	return st
}

// steadySyntheticState builds a crowded steady-state snapshot for the
// incremental-replan benchmarks: every node hosts a web instance plus
// two running jobs (5 GB free each), and the pending backlog's 12 GB
// footprint fits neither the free memory nor the memory a single
// eviction could free (5 + 5 GB) — so cycle over cycle, the placement
// provably cannot change and only demand drift re-prices the shares.
func steadySyntheticState(nodes, jobs int, model queueing.MG1PS) *core.State {
	st := &core.State{Now: 50000}
	instances := map[cluster.NodeID]res.CPU{}
	for i := 0; i < nodes; i++ {
		id := cluster.NodeID(fmt.Sprintf("n%04d", i))
		st.Nodes = append(st.Nodes, core.NodeInfo{ID: id, CPU: 18000, Mem: 16000})
		instances[id] = 150
	}
	running := 2 * nodes
	if running > jobs {
		running = jobs
	}
	for i := 0; i < jobs; i++ {
		info := core.JobInfo{
			ID:        batch.JobID(fmt.Sprintf("j%05d", i)),
			State:     batch.Pending,
			Remaining: res.Work(4500 * float64(5000+i%20000)),
			MaxSpeed:  4500,
			Mem:       12000,
			Goal:      60000 + float64(i%40000),
			Submitted: float64(i),
		}
		if i < running {
			info.State = batch.Running
			info.Node = st.Nodes[i%nodes].ID
			info.Share = 4500
			info.Mem = 5000
			info.Goal = 120000 + float64(i)
		}
		st.Jobs = append(st.Jobs, info)
	}
	st.Apps = []core.AppInfo{{
		ID: "web", Lambda: 65, RTGoal: 3.0, Model: model,
		InstanceMem: 1000, MaxPerInstance: 18000, MinInstances: nodes,
		Instances: instances,
	}}
	return st
}

// BenchmarkEqualizer measures the hypothetical-utility waterfill alone
// across population sizes — the inner loop of every control cycle.
func BenchmarkEqualizer(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("curves=%d", n), func(b *testing.B) {
			curves := make([]utility.Curve, n)
			for i := range curves {
				curves[i] = utility.NewJobCurve(fmt.Sprintf("j%d", i), 0,
					res.Work(4500*float64(1000+i)), 4500, float64(3000+i*7), nil)
			}
			capacity := res.CPU(float64(n) * 2000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := utility.Equalize(curves, capacity)
				if r.Allocated <= 0 {
					b.Fatal("no allocation")
				}
			}
		})
	}
}

// BenchmarkFullPaperRun measures the complete Figure 1/2 simulation —
// 120 control cycles over 72 000 simulated seconds — as one unit.
func BenchmarkFullPaperRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runOnce(b, slaplace.PaperScenario(uint64(42)))
		if r.JobStats.Completed == 0 {
			b.Fatal("no completions")
		}
	}
}

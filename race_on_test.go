//go:build race

package slaplace_test

// raceEnabled reports whether the race detector instruments this test
// binary; timing-sensitive assertions skip under it.
const raceEnabled = true

package slaplace_test

import (
	"fmt"

	"slaplace"
)

// Example runs the smallest end-to-end scenario and prints its job
// outcome. Everything is deterministic for a fixed seed.
func Example() {
	result, err := slaplace.Run(slaplace.QuickScenario(42))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stats := result.ClassStats["batch"]
	fmt.Printf("completed=%d violations=%d\n", stats.Completed, stats.GoalViolations)
	// Output:
	// completed=20 violations=0
}

// ExampleRun_customScenario builds a scenario from scratch: two nodes,
// one web application with a 2-second SLA, and a burst of three batch
// jobs.
func ExampleRun_customScenario() {
	model, err := slaplace.NewMG1PS(1350, 4500) // 0.3 s/request on one core
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sc := slaplace.Scenario{
		Name: "example", Seed: 1, Horizon: 4000,
		Nodes: 2, NodeCPU: 18000, NodeMem: 16 * slaplace.GB,
		Costs:      slaplace.DefaultVMCosts(),
		Controller: slaplace.NewController(slaplace.DefaultControllerConfig()),
		Loop: slaplace.LoopOptions{
			CyclePeriod: 300, FirstCycle: 30, ActuationDelay: 25,
		},
		Jobs: []slaplace.JobStream{{
			Class: slaplace.JobClass{
				Name: "crunch", Work: slaplace.Work(4500 * 600),
				MaxSpeed: 4500, Mem: 5 * slaplace.GB, GoalStretch: 3,
			},
			Phases:       []slaplace.ArrivalPhase{{Start: 0, MeanInterarrival: 1e9}},
			InitialBurst: 3, MaxJobs: 3, IDPrefix: "crunch",
		}},
		Apps: []slaplace.WebApp{{
			ID: "shop", RTGoal: 2.0, Model: model,
			Pattern:     slaplace.ConstantLoad{Rate: 5},
			InstanceMem: 1 * slaplace.GB, MaxPerInstance: 18000, MinInstances: 1,
		}},
	}
	result, err := slaplace.Run(sc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("jobs completed: %d\n", result.JobStats.Completed)
	// Output:
	// jobs completed: 3
}

// ExampleController_baselines swaps the placement policy on an
// otherwise identical scenario.
func ExampleController_baselines() {
	for _, ctrl := range []slaplace.Controller{
		slaplace.NewController(slaplace.DefaultControllerConfig()),
		slaplace.FCFS,
		slaplace.StaticPartition(0.5),
	} {
		sc := slaplace.QuickScenario(42)
		sc.Controller = ctrl
		result, err := slaplace.Run(sc)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: %d completed\n", ctrl.Name(), result.JobStats.Completed)
	}
	// Output:
	// utility-placement: 20 completed
	// fcfs: 20 completed
	// static[batch=50%]: 20 completed
}
